//! Differential runner: one layer spec, every engine path, one oracle.
//!
//! [`run_layer_diff`] generates deterministic inputs/weights from a seed,
//! executes every convolution path in the workspace — per-call kernels,
//! planned/fused drivers, the sparse ODQ executor, and the
//! `ConvExecutor`-level engine forwards — and compares each against the
//! scalar oracle in [`crate::oracle`], reporting per-element max ulp/abs
//! divergence. [`minimize`] shrinks a failing spec to a smallest still-
//! failing geometry for triage.

use odq_core::engine::OdqEngine;
use odq_core::odq_conv::{
    odq_conv2d, odq_conv2d_planned, odq_conv2d_sparse, odq_conv2d_sparse_planned, OdqCfg,
};
use odq_drq::drq_conv::{drq_conv2d, drq_conv2d_planned, DrqCfg};
use odq_drq::DrqEngine;
use odq_nn::executor::{add_bias, ConvCtx, ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_quant::plan::{PlanCache, PlanSpec};
use odq_quant::qconv::{qconv2d, qconv2d_with};
use odq_quant::{quantize_activation, quantize_weights, quantize_weights_symmetric};
use odq_tensor::conv::conv2d;
use odq_tensor::{ConvGeom, Tensor};

use crate::oracle::{
    ref_add_bias, ref_conv2d, ref_drq_conv2d, ref_odq_conv2d, ref_qconv2d_affine,
    ref_quantize_activation, ref_quantize_weights, ref_quantize_weights_symmetric, RefQuant,
};

/// One differential test case: a conv geometry plus deterministic data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    /// Convolution geometry.
    pub geom: ConvGeom,
    /// Batch size.
    pub batch: usize,
    /// Seed for the deterministic input/weight/bias generators.
    pub seed: u64,
    /// Whether a per-channel bias is supplied.
    pub with_bias: bool,
}

impl LayerSpec {
    /// ODQ threshold for this case (varied by seed so the sweep covers
    /// mostly-sensitive, mixed and mostly-insensitive masks).
    pub fn odq_threshold(&self) -> f32 {
        [0.1, 0.3, 0.6][(self.seed % 3) as usize]
    }

    /// DRQ configuration for this case (alternates the paper's 8→4 and
    /// 4→2 pairs).
    pub fn drq_cfg(&self) -> DrqCfg {
        if self.seed.is_multiple_of(2) {
            DrqCfg::int8_int4(0.25)
        } else {
            DrqCfg::int4_int2(0.25)
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fill_unit(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..n).map(|_| (splitmix(&mut s) >> 40) as f32 / (1u64 << 24) as f32).collect()
}

fn fill_signed(n: usize, seed: u64) -> Vec<f32> {
    fill_unit(n, seed).into_iter().map(|v| 2.0 * v - 1.0).collect()
}

/// Deterministic activation tensor for a spec (`[batch, Ci, H, W]`,
/// values in `[0, 1)` — the post-clipped-ReLU domain the engines expect).
pub fn gen_input(spec: &LayerSpec) -> Tensor {
    let g = &spec.geom;
    let n = spec.batch * g.in_channels * g.in_h * g.in_w;
    Tensor::from_vec(g.input_shape(spec.batch), fill_unit(n, spec.seed ^ 0xA11CE))
}

/// Deterministic weight tensor for a spec (`[Co, Ci, K, K]`, values in
/// `(-1, 1)`).
pub fn gen_weights(spec: &LayerSpec) -> Tensor {
    let g = &spec.geom;
    let n = g.out_channels * g.col_len();
    Tensor::from_vec(
        [g.out_channels, g.in_channels, g.kernel, g.kernel],
        fill_signed(n, spec.seed ^ 0xB0B),
    )
}

/// Deterministic bias for a spec, `None` when the spec says so.
pub fn gen_bias(spec: &LayerSpec) -> Option<Vec<f32>> {
    spec.with_bias.then(|| fill_signed(spec.geom.out_channels, spec.seed ^ 0xC0FFEE))
}

/// How strictly a path must agree with the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathClass {
    /// Integer-arithmetic path: must be bit-exact (0 ulp) and any masks
    /// must match exactly.
    Integer,
    /// f32-accumulation path: up to 1 ulp of reduction-order headroom.
    Float,
}

/// Per-element divergence summary between oracle and engine outputs.
#[derive(Clone, Copy, Debug)]
pub struct Divergence {
    /// Largest absolute difference.
    pub max_abs: f32,
    /// Largest ulp distance (`u64::MAX` for NaN disagreement).
    pub max_ulp: u64,
    /// Flat index of the worst element.
    pub worst_index: usize,
    /// `(oracle, engine)` values at the worst element.
    pub worst_pair: (f32, f32),
}

/// Ulp distance between two f32 values. Equal values (including `+0`/`-0`)
/// are 0; any NaN disagreement is `u64::MAX`.
pub fn ulp_diff(a: f32, b: f32) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn key(x: f32) -> i64 {
        let b = x.to_bits();
        if b & 0x8000_0000 == 0 {
            b as i64
        } else {
            -((b & 0x7fff_ffff) as i64)
        }
    }
    (key(a) - key(b)).unsigned_abs()
}

/// Element-wise comparison of an engine output against the oracle.
pub fn compare(oracle: &[f32], engine: &[f32]) -> Divergence {
    assert_eq!(oracle.len(), engine.len(), "output length mismatch");
    let mut d = Divergence { max_abs: 0.0, max_ulp: 0, worst_index: 0, worst_pair: (0.0, 0.0) };
    for (i, (&o, &e)) in oracle.iter().zip(engine).enumerate() {
        let u = ulp_diff(o, e);
        if u > d.max_ulp {
            d.max_ulp = u;
            d.worst_index = i;
            d.worst_pair = (o, e);
        }
        d.max_abs = d.max_abs.max((o - e).abs());
    }
    d
}

/// One engine path's agreement with the oracle.
#[derive(Clone, Debug)]
pub struct PathReport {
    /// Path label, e.g. `"odq/sparse-planned"`.
    pub path: &'static str,
    /// Strictness class.
    pub class: PathClass,
    /// Output divergence.
    pub divergence: Divergence,
    /// Mask positions where engine and oracle disagree (sensitivity or
    /// input masks; 0 for paths without masks).
    pub mask_mismatches: usize,
}

impl PathReport {
    /// Whether this path meets its class's bound.
    pub fn ok(&self) -> bool {
        let ulp_ok = match self.class {
            PathClass::Integer => self.divergence.max_ulp == 0,
            PathClass::Float => self.divergence.max_ulp <= 1,
        };
        ulp_ok && self.mask_mismatches == 0
    }
}

/// Full differential report for one spec.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The spec that was run.
    pub spec: LayerSpec,
    /// One entry per engine path.
    pub paths: Vec<PathReport>,
}

impl DiffReport {
    /// Paths that violated their divergence bound.
    pub fn failures(&self) -> Vec<&PathReport> {
        self.paths.iter().filter(|p| !p.ok()).collect()
    }

    /// Whether every path met its bound.
    pub fn ok(&self) -> bool {
        self.paths.iter().all(|p| p.ok())
    }

    /// Human-readable table for `conformance_check` / failure messages.
    pub fn render(&self) -> String {
        let g = &self.spec.geom;
        let mut s = format!(
            "spec: {}x{}x{}x{} k{} s{} p{} co{} batch {} seed {} bias {}\n",
            self.spec.batch,
            g.in_channels,
            g.in_h,
            g.in_w,
            g.kernel,
            g.stride,
            g.padding,
            g.out_channels,
            self.spec.batch,
            self.spec.seed,
            self.spec.with_bias,
        );
        for p in &self.paths {
            let d = &p.divergence;
            s.push_str(&format!(
                "  {:6} {:22} max_ulp {:>3} max_abs {:>12.3e} mask_mism {:>4}  worst[{}] oracle {:.9e} engine {:.9e}\n",
                if p.ok() { "ok" } else { "FAIL" },
                p.path,
                d.max_ulp,
                d.max_abs,
                p.mask_mismatches,
                d.worst_index,
                d.worst_pair.0,
                d.worst_pair.1,
            ));
        }
        s
    }
}

fn mask_mismatch(a: &[bool], b: &[bool]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

fn report(
    path: &'static str,
    class: PathClass,
    oracle: &[f32],
    engine: &[f32],
    mask_mismatches: usize,
) -> PathReport {
    PathReport { path, class, divergence: compare(oracle, engine), mask_mismatches }
}

/// Run every engine path for one spec against the scalar oracle.
pub fn run_layer_diff(spec: &LayerSpec) -> DiffReport {
    let g = spec.geom;
    let n = spec.batch;
    let x = gen_input(spec);
    let w = gen_weights(spec);
    let bias_v = gen_bias(spec);
    let bias = bias_v.as_deref();
    let ctx = ConvCtx { name: "conformance", geom: g, weights: &w, bias, qat: None };
    let mut paths = Vec::new();

    // --- float reference path -------------------------------------------
    let oracle_f32 = ref_conv2d(x.as_slice(), w.as_slice(), bias, n, &g);
    let y = conv2d(&x, &w, bias, &g);
    paths.push(report("float/conv2d", PathClass::Float, &oracle_f32, y.as_slice(), 0));
    let y = FloatConvExecutor.conv(&ctx, &x);
    paths.push(report("float/executor", PathClass::Float, &oracle_f32, y.as_slice(), 0));

    // --- static INT8 (offset-binary weights, i32 accumulation) ----------
    let oracle_s8 = {
        let qx = ref_quantize_activation(x.as_slice(), 8, 1.0);
        let qw = ref_quantize_weights(w.as_slice(), 8);
        let mut o = ref_qconv2d_affine(&qx, &qw, n, &g);
        if let Some(b) = bias {
            ref_add_bias(&mut o, b, n, &g);
        }
        o
    };
    let qx = quantize_activation(&x, 8, 1.0);
    let qw = quantize_weights(&w, 8);
    let with_b = |mut y: Tensor| {
        if let Some(b) = bias {
            add_bias(&mut y, b, &g);
        }
        y
    };
    let y = with_b(qconv2d(&qx, &qw, &g));
    paths.push(report("static8/qconv2d", PathClass::Integer, &oracle_s8, y.as_slice(), 0));
    let plans = PlanCache::new();
    let plan = plans.plan_for("conformance", &w, PlanSpec::static_quant(8));
    let y = with_b(qconv2d_with(&qx, &plan.qw, &g, plans.pool()));
    paths.push(report("static8/planned", PathClass::Integer, &oracle_s8, y.as_slice(), 0));
    let y = StaticQuantExecutor::int(8).conv(&ctx, &x);
    paths.push(report("static8/executor", PathClass::Integer, &oracle_s8, y.as_slice(), 0));

    // --- static INT16 (symmetric weights, i64 accumulation path) --------
    let oracle_s16 = {
        let qx = ref_quantize_activation(x.as_slice(), 8, 1.0);
        let qw = ref_quantize_weights_symmetric(w.as_slice(), 16);
        let mut o = ref_qconv2d_affine(&qx, &qw, n, &g);
        if let Some(b) = bias {
            ref_add_bias(&mut o, b, n, &g);
        }
        o
    };
    let qw16 = quantize_weights_symmetric(&w, 16);
    let y = with_b(qconv2d(&qx, &qw16, &g));
    paths.push(report("static16/qconv2d-wide", PathClass::Integer, &oracle_s16, y.as_slice(), 0));
    let y = StaticQuantExecutor::with_bits(16, 8, 1.0).conv(&ctx, &x);
    paths.push(report("static16/executor", PathClass::Integer, &oracle_s16, y.as_slice(), 0));

    // --- ODQ: dense, planned, sparse, sparse-planned, engine ------------
    let cfg = OdqCfg::int4(spec.odq_threshold());
    let oracle_odq = ref_odq_conv2d(x.as_slice(), w.as_slice(), bias, n, &g, &cfg);
    let odq_paths: Vec<(&'static str, odq_core::odq_conv::OdqConvOutput)> = vec![
        ("odq/dense", odq_conv2d(&x, &w, bias, &g, &cfg)),
        ("odq/planned", {
            let plans = PlanCache::new();
            let plan = plans.plan_for("conformance", &w, PlanSpec::odq(cfg.w_bits, cfg.low_bits));
            let qx4 = quantize_activation(&x, cfg.a_bits, cfg.a_clip);
            odq_conv2d_planned(&qx4, &plan, bias, &g, &cfg, plans.pool())
        }),
        ("odq/sparse", odq_conv2d_sparse(&x, &w, bias, &g, &cfg)),
        ("odq/sparse-planned", {
            let plans = PlanCache::new();
            let plan = plans.plan_for("conformance", &w, PlanSpec::odq(cfg.w_bits, cfg.low_bits));
            odq_conv2d_sparse_planned(&x, &plan, bias, &g, &cfg, plans.pool())
        }),
    ];
    for (label, r) in &odq_paths {
        let mm = mask_mismatch(&oracle_odq.mask, r.mask.bits());
        paths.push(report(label, PathClass::Integer, &oracle_odq.output, r.output.as_slice(), mm));
    }
    // The dense form also exposes the exact-INT4 reference; pin it too.
    paths.push(report(
        "odq/reference",
        PathClass::Integer,
        &oracle_odq.reference,
        odq_paths[0].1.reference.as_slice(),
        0,
    ));
    let mut engine = OdqEngine::new(cfg.threshold);
    let y = engine.conv(&ctx, &x);
    paths.push(report("odq/engine", PathClass::Integer, &oracle_odq.output, y.as_slice(), 0));
    let mut engine = OdqEngine::new(cfg.threshold);
    engine.record = false;
    engine.sparse = true;
    let y = engine.conv(&ctx, &x);
    paths.push(report(
        "odq/engine-sparse",
        PathClass::Integer,
        &oracle_odq.output,
        y.as_slice(),
        0,
    ));

    // --- DRQ: per-call, planned, engine ---------------------------------
    let dcfg = spec.drq_cfg();
    let oracle_drq = ref_drq_conv2d(x.as_slice(), w.as_slice(), bias, n, &g, &dcfg);
    let r = drq_conv2d(&x, &w, bias, &g, &dcfg);
    let mm = mask_mismatch(&oracle_drq.input_mask, &r.input_mask);
    paths.push(report(
        "drq/drq_conv2d",
        PathClass::Integer,
        &oracle_drq.output,
        r.output.as_slice(),
        mm,
    ));
    let plans = PlanCache::new();
    let plan = plans.plan_for("conformance", &w, PlanSpec::drq(dcfg.hi_bits, dcfg.lo_bits));
    let r = drq_conv2d_planned(&x, &plan, bias, &g, &dcfg, plans.pool());
    let mm = mask_mismatch(&oracle_drq.input_mask, &r.input_mask);
    paths.push(report(
        "drq/planned",
        PathClass::Integer,
        &oracle_drq.output,
        r.output.as_slice(),
        mm,
    ));
    let mut engine = DrqEngine::new(dcfg);
    let y = engine.conv(&ctx, &x);
    paths.push(report("drq/engine", PathClass::Integer, &oracle_drq.output, y.as_slice(), 0));

    DiffReport { spec: *spec, paths }
}

/// Shrink a failing spec toward a smallest still-failing one by greedily
/// trying dimension reductions (batch → 1, fewer channels, smaller
/// spatial extent, kernel → 1, padding → 0, stride → 1) and keeping any
/// candidate that still fails. Returns the input unchanged if it passes.
pub fn minimize(spec: &LayerSpec) -> LayerSpec {
    if run_layer_diff(spec).ok() {
        return *spec;
    }
    let mut cur = *spec;
    loop {
        let g = cur.geom;
        let mut candidates: Vec<LayerSpec> = Vec::new();
        if cur.batch > 1 {
            candidates.push(LayerSpec { batch: 1, ..cur });
            candidates.push(LayerSpec { batch: cur.batch / 2, ..cur });
        }
        if cur.with_bias {
            candidates.push(LayerSpec { with_bias: false, ..cur });
        }
        let mut geoms: Vec<ConvGeom> = Vec::new();
        if g.in_channels > 1 {
            geoms.push(ConvGeom { in_channels: (g.in_channels / 2).max(1), ..g });
        }
        if g.out_channels > 1 {
            geoms.push(ConvGeom { out_channels: (g.out_channels / 2).max(1), ..g });
        }
        for (h, w) in [(g.in_h / 2, g.in_w), (g.in_h, g.in_w / 2), (g.kernel, g.kernel)] {
            if h >= 1
                && w >= 1
                && (h, w) != (g.in_h, g.in_w)
                && h + 2 * g.padding >= g.kernel
                && w + 2 * g.padding >= g.kernel
            {
                geoms.push(ConvGeom { in_h: h, in_w: w, ..g });
            }
        }
        if g.kernel > 1 {
            geoms.push(ConvGeom { kernel: 1, padding: 0, ..g });
        }
        if g.padding > 0 {
            geoms.push(ConvGeom { padding: 0, ..g });
        }
        if g.stride > 1 {
            geoms.push(ConvGeom { stride: 1, ..g });
        }
        candidates.extend(geoms.into_iter().map(|geom| LayerSpec { geom, ..cur }));
        let next = candidates.into_iter().find(|c| !run_layer_diff(c).ok());
        match next {
            Some(c) => cur = c,
            None => return cur,
        }
    }
}

/// The per-engine oracle executor: a [`ConvExecutor`] whose every conv is
/// computed by the scalar oracle. Running a whole model through
/// `Model::forward_eval` with this executor gives an end-to-end golden
/// forward whose only difference from an engine forward is the conv
/// arithmetic — which is how the serve round-trip is pinned to the
/// oracle.
pub struct OracleExecutor {
    /// Which engine's arithmetic to mirror.
    pub kind: OracleKind,
}

/// Which serving engine an [`OracleExecutor`] mirrors. Matches
/// `odq_serve::EngineKind`'s configurations (activation clip 1.0 for the
/// static engine, the paper's 8→4 DRQ pair, ODQ's 4/2-bit split).
#[derive(Clone, Copy, Debug)]
pub enum OracleKind {
    /// Float reference.
    Float,
    /// Static INT-k (offset-binary ≤15 bits, symmetric at 16).
    Static {
        /// Weight and activation bit width.
        bits: u8,
    },
    /// Output-directed dynamic quantization.
    Odq {
        /// Sensitivity threshold.
        threshold: f32,
    },
    /// Input-directed DRQ baseline (the paper's 8→4 configuration).
    Drq {
        /// Input-region sensitivity threshold.
        input_threshold: f32,
    },
}

impl ConvExecutor for OracleExecutor {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        assert!(ctx.qat.is_none(), "oracle executor does not model QAT layers");
        let g = ctx.geom;
        let n = x.dims()[0];
        let (xs, ws) = (x.as_slice(), ctx.weights.as_slice());
        let out = match self.kind {
            OracleKind::Float => ref_conv2d(xs, ws, ctx.bias, n, &g),
            OracleKind::Static { bits } => {
                let qx = ref_quantize_activation(xs, bits, 1.0);
                let qw: RefQuant = if bits > 15 {
                    ref_quantize_weights_symmetric(ws, bits)
                } else {
                    ref_quantize_weights(ws, bits)
                };
                let mut o = ref_qconv2d_affine(&qx, &qw, n, &g);
                if let Some(b) = ctx.bias {
                    ref_add_bias(&mut o, b, n, &g);
                }
                o
            }
            OracleKind::Odq { threshold } => {
                ref_odq_conv2d(xs, ws, ctx.bias, n, &g, &OdqCfg::int4(threshold)).output
            }
            OracleKind::Drq { input_threshold } => {
                ref_drq_conv2d(xs, ws, ctx.bias, n, &g, &DrqCfg::int8_int4(input_threshold)).output
            }
        };
        Tensor::from_vec(g.output_shape(n), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_diff_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(-1.0, f32::from_bits((-1.0f32).to_bits() + 1)), 1);
        assert!(ulp_diff(1.0, f32::NAN) == u64::MAX);
        // Straddling zero: distance counts grid steps through both signs.
        assert_eq!(ulp_diff(f32::from_bits(1), -f32::from_bits(1)), 2);
    }

    #[test]
    fn a_small_spec_passes_every_path() {
        let spec = LayerSpec {
            geom: ConvGeom::new(2, 3, 5, 4, 3, 1, 1),
            batch: 2,
            seed: 7,
            with_bias: true,
        };
        let r = run_layer_diff(&spec);
        assert!(r.ok(), "unexpected divergence:\n{}", r.render());
    }

    #[test]
    fn minimize_returns_passing_spec_unchanged() {
        let spec = LayerSpec {
            geom: ConvGeom::new(1, 1, 3, 3, 1, 1, 0),
            batch: 1,
            seed: 1,
            with_bias: false,
        };
        assert_eq!(minimize(&spec), spec);
    }
}
