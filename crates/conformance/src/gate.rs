//! The oracle-backed publish gate: a registry candidate must forward
//! bit-identically to the scalar golden oracle before it becomes routable.

use odq_core::engine::OdqEngine;
use odq_drq::{DrqCfg, DrqEngine};
use odq_nn::executor::{ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_nn::models::Model;
use odq_quant::plan::PlanCache;
use odq_registry::PublishGate;
use odq_tensor::Tensor;

use crate::runner::{compare, OracleExecutor, OracleKind};

/// A [`PublishGate`] that forwards a deterministic probe batch through the
/// candidate model twice — once on the real engine matching
/// [`OracleKind`], once on the scalar [`OracleExecutor`] — and rejects the
/// publish unless the logits agree bit-for-bit.
///
/// This closes the gap the registry's
/// [`FiniteGate`](odq_registry::FiniteGate) leaves open: weights can be
/// perfectly finite and still be
/// the *wrong artifact* (saved mid-refactor, truncated, produced by a
/// miscompiled trainer). Pinning the candidate's end-to-end forward to the
/// independent scalar reference at the registry door means a version that
/// publishes is a version whose serving-time arithmetic is already proven
/// conformant on this host.
///
/// QAT fake-quantization is serve-time-invisible (engines quantize for
/// themselves), and the oracle deliberately does not model it — the gate
/// probes with QAT cleared and restores the candidate's config afterwards.
#[derive(Clone, Copy, Debug)]
pub struct OracleGate {
    /// Which engine/oracle pair vets the candidate.
    pub kind: OracleKind,
    /// Probe batch size (≥1; each sample gets a distinct input pattern).
    pub probes: usize,
}

impl OracleGate {
    /// Gate on the float engine with a 2-sample probe — the cheapest
    /// configuration that still exercises batch handling.
    pub fn float() -> Self {
        Self { kind: OracleKind::Float, probes: 2 }
    }

    /// The engine executor mirroring `self.kind`.
    fn engine(&self) -> Box<dyn ConvExecutor> {
        let plans = std::sync::Arc::new(PlanCache::new());
        match self.kind {
            OracleKind::Float => Box::new(FloatConvExecutor),
            OracleKind::Static { bits } => {
                Box::new(StaticQuantExecutor::with_plan_cache(bits, bits, 1.0, plans))
            }
            OracleKind::Odq { threshold } => Box::new(OdqEngine::with_plan_cache(threshold, plans)),
            OracleKind::Drq { input_threshold } => {
                Box::new(DrqEngine::with_plan_cache(DrqCfg::int8_int4(input_threshold), plans))
            }
        }
    }
}

/// Deterministic probe batch covering the input range the activations are
/// clipped to: a per-sample-offset Weyl sequence in [0, 1).
pub(crate) fn probe_input(n: usize, c: usize, hw: usize) -> Tensor {
    let numel = n * c * hw * hw;
    let data: Vec<f32> = (0..numel)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            (x as f32) / (1u64 << 24) as f32
        })
        .collect();
    Tensor::from_vec(vec![n, c, hw, hw], data)
}

impl PublishGate for OracleGate {
    fn label(&self) -> &str {
        "oracle-conformance"
    }

    fn check(&self, _name: &str, model: &mut Model) -> Result<(), String> {
        let qat = model.cfg.qat;
        model.set_qat(None);
        let x = probe_input(self.probes.max(1), model.cfg.in_channels, model.cfg.input_hw);
        let engine_out = model.forward_eval(&x, self.engine().as_mut());
        let oracle_out = model.forward_eval(&x, &mut OracleExecutor { kind: self.kind });
        model.set_qat(qat);

        let div = compare(oracle_out.as_slice(), engine_out.as_slice());
        if div.max_ulp == 0 {
            Ok(())
        } else {
            Err(format!(
                "engine logits diverge from the scalar oracle: max {} ulp \
                 (abs {:.3e}) at flat index {}",
                div.max_ulp, div.max_abs, div.worst_index
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_nn::layers::QatCfg;
    use odq_nn::models::ModelCfg;
    use odq_nn::Arch;
    use odq_registry::ModelRegistry;

    fn model() -> Model {
        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        cfg.in_channels = 1;
        Model::build(cfg)
    }

    #[test]
    fn oracle_gate_passes_conformant_models_on_every_kind() {
        for kind in [
            OracleKind::Float,
            OracleKind::Static { bits: 8 },
            OracleKind::Odq { threshold: 0.3 },
            OracleKind::Drq { input_threshold: 0.1 },
        ] {
            let gate = OracleGate { kind, probes: 2 };
            gate.check("m", &mut model())
                .unwrap_or_else(|e| panic!("{kind:?} gate rejected a healthy model: {e}"));
        }
    }

    #[test]
    fn oracle_gate_restores_qat_config_after_probing() {
        let mut m = model();
        let qat = QatCfg { w_bits: 4, a_bits: 4, a_clip: 1.0 };
        m.set_qat(Some(qat));
        OracleGate::float().check("m", &mut m).unwrap();
        assert_eq!(m.cfg.qat, Some(qat), "gate must leave the candidate's QAT config intact");
    }

    #[test]
    fn registry_publishes_through_the_oracle_gate() {
        let reg = ModelRegistry::gated(OracleGate::float());
        assert_eq!(reg.publish("lenet", model(), vec![]).unwrap(), 1);
    }
}
