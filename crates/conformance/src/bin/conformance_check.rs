//! Conformance driver binary.
//!
//! Modes:
//!
//! * `conformance_check` — random differential sweep: sample layer specs,
//!   run every engine path against the scalar oracle, and on failure
//!   print a minimized reproducer. `--cases N` controls the sample count
//!   (default 32), `--seed S` the sampling stream.
//! * `conformance_check --verify-fixtures` — recompute the committed
//!   goldens under `tests/fixtures/` and fail on any drift (the CI gate).
//! * `conformance_check --regen` — rewrite the committed goldens from the
//!   current oracle. Only do this when an output change is intended.

use std::process::ExitCode;

use odq_conformance::fixtures::{fixtures_dir, regenerate_into, verify_against};
use odq_conformance::{minimize, run_layer_diff, LayerSpecStrategy};
use proptest::prelude::{Strategy, TestRng};

fn usage() -> ExitCode {
    eprintln!("usage: conformance_check [--regen | --verify-fixtures] [--cases N] [--seed S]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut regen = false;
    let mut verify = false;
    let mut cases: usize = 32;
    let mut seed: u64 = 0x0D9_C0DE;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--regen" => regen = true,
            "--verify-fixtures" => verify = true,
            "--cases" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cases = n,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let dir = fixtures_dir();
    if regen {
        match regenerate_into(&dir) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("fixture regeneration failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if verify {
        return match verify_against(&dir) {
            Ok(()) => {
                println!("fixtures clean ({})", dir.display());
                ExitCode::SUCCESS
            }
            Err(drift) => {
                eprintln!("fixture drift detected:");
                for d in drift {
                    eprintln!("  {d}");
                }
                eprintln!(
                    "if the change is intentional, run `conformance_check --regen` and \
                     commit the updated fixtures with an explanation"
                );
                ExitCode::FAILURE
            }
        };
    }

    // Default mode: random differential sweep.
    let mut rng = TestRng::new(seed);
    let strategy = LayerSpecStrategy::default();
    let mut failed = 0usize;
    for i in 0..cases {
        let spec = strategy.sample(&mut rng);
        let report = run_layer_diff(&spec);
        if report.ok() {
            println!("case {i:>3}: ok    {spec:?}");
        } else {
            failed += 1;
            println!("case {i:>3}: FAIL  {spec:?}");
            let min = minimize(&spec);
            let min_report = run_layer_diff(&min);
            println!("--- minimized reproducer ---");
            println!("{}", min_report.render());
        }
    }
    if failed == 0 {
        println!("{cases} cases, all engine paths conformant");
        ExitCode::SUCCESS
    } else {
        eprintln!("{failed}/{cases} cases diverged from the scalar oracle");
        ExitCode::FAILURE
    }
}
