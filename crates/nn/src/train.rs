//! SGD training loop and evaluation helpers.

use odq_tensor::Tensor;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

use crate::executor::ConvExecutor;
use crate::loss::{accuracy, cross_entropy};
use crate::models::Model;

/// SGD hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SgdCfg {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay (applied to parameters with `decay = true`).
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables). Small, deep models at
    /// aggressive learning rates occasionally blow up without it.
    pub grad_clip: f32,
}

impl Default for SgdCfg {
    fn default() -> Self {
        Self { lr: 0.05, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 }
    }
}

/// Apply one SGD-with-momentum step from the accumulated gradients, then
/// zero the gradients.
pub fn sgd_step(model: &mut Model, cfg: &SgdCfg) {
    // Global gradient-norm clipping.
    let mut clip_scale = 1.0f32;
    if cfg.grad_clip > 0.0 {
        let mut sq = 0.0f64;
        model.visit_params(&mut |p| {
            sq += p.grad.as_slice().iter().map(|&g| (g as f64) * g as f64).sum::<f64>();
        });
        let norm = sq.sqrt() as f32;
        if norm > cfg.grad_clip {
            clip_scale = cfg.grad_clip / norm;
        }
    }
    model.visit_params(&mut |p| {
        let wd = if p.decay { cfg.weight_decay } else { 0.0 };
        let m = p.momentum.as_mut_slice();
        let g = p.grad.as_slice();
        let w = p.value.as_mut_slice();
        for i in 0..w.len() {
            let grad = g[i] * clip_scale + wd * w[i];
            m[i] = cfg.momentum * m[i] - cfg.lr * grad;
            w[i] += m[i];
        }
        p.zero_grad();
    });
}

/// Learning-rate schedule across epochs.
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Step decay: multiply by `gamma` every `every` epochs.
    Step {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from the base LR to `min_lr` over `total` epochs.
    Cosine {
        /// Total epochs of the schedule.
        total: usize,
        /// Final learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Step { every, gamma } => base * gamma.powi((epoch / every.max(1)) as i32),
            LrSchedule::Cosine { total, min_lr } => {
                let t = (epoch as f32 / total.max(1) as f32).min(1.0);
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Train for `epochs` passes with a learning-rate schedule; returns the
/// per-epoch mean losses.
#[allow(clippy::too_many_arguments)]
pub fn train_scheduled(
    model: &mut Model,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    base: &SgdCfg,
    schedule: LrSchedule,
    epochs: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<f32> {
    (0..epochs)
        .map(|e| {
            let cfg = SgdCfg { lr: schedule.lr_at(base.lr, e), ..*base };
            train_epoch(model, images, labels, batch_size, &cfg, rng)
        })
        .collect()
}

/// One pass over the training set in shuffled mini-batches.
///
/// `images: [N, C, H, W]`, `labels: [N]`. Returns the mean training loss.
pub fn train_epoch(
    model: &mut Model,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    cfg: &SgdCfg,
    rng: &mut ChaCha8Rng,
) -> f32 {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "label count mismatch");
    assert!(batch_size > 0);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut total_loss = 0.0f64;
    let mut batches = 0usize;
    for chunk in order.chunks(batch_size) {
        let (bx, by) = gather_batch(images, labels, chunk);
        let logits = model.forward_train(&bx);
        let (loss, dlogits) = cross_entropy(&logits, &by);
        model.backward(&dlogits);
        sgd_step(model, cfg);
        total_loss += loss as f64;
        batches += 1;
    }
    (total_loss / batches.max(1) as f64) as f32
}

/// Evaluate Top-1 accuracy with the given conv executor, in batches.
pub fn evaluate(
    model: &Model,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    exec: &mut dyn ConvExecutor,
) -> f32 {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "label count mismatch");
    let idx: Vec<usize> = (0..n).collect();
    let mut correct = 0.0f32;
    let mut seen = 0usize;
    for chunk in idx.chunks(batch_size.max(1)) {
        let (bx, by) = gather_batch(images, labels, chunk);
        let logits = model.forward_eval(&bx, exec);
        correct += accuracy(&logits, &by) * by.len() as f32;
        seen += by.len();
    }
    if seen == 0 {
        0.0
    } else {
        correct / seen as f32
    }
}

/// Gather a batch of images/labels by index.
pub fn gather_batch(images: &Tensor, labels: &[usize], idx: &[usize]) -> (Tensor, Vec<usize>) {
    let dims = images.dims();
    let per = images.numel() / dims[0];
    let mut data = Vec::with_capacity(idx.len() * per);
    let mut ls = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(images.outer(i));
        ls.push(labels[i]);
    }
    let mut shape = dims.to_vec();
    shape[0] = idx.len();
    (Tensor::from_vec(shape, data), ls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use crate::executor::FloatConvExecutor;
    use crate::models::ModelCfg;
    use crate::param::init_rng;

    /// A linearly-separable toy set: class = brightest quadrant.
    fn toy_data(n: usize, hw: usize) -> (Tensor, Vec<usize>) {
        let mut data = vec![0.05f32; n * 3 * hw * hw];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 4;
            let (y0, x0) = ((class / 2) * hw / 2, (class % 2) * hw / 2);
            for c in 0..3 {
                for y in y0..y0 + hw / 2 {
                    for x in x0..x0 + hw / 2 {
                        data[((i * 3 + c) * hw + y) * hw + x] = 0.9;
                    }
                }
            }
            labels.push(class);
        }
        (Tensor::from_vec([n, 3, hw, hw], data), labels)
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        let mut m = Model::build(cfg);
        let (x, y) = toy_data(32, 8);
        let mut rng = init_rng(11);
        let sgd = SgdCfg { lr: 0.1, momentum: 0.9, weight_decay: 0.0, grad_clip: 5.0 };
        let first = train_epoch(&mut m, &x, &y, 8, &sgd, &mut rng);
        let mut last = first;
        for _ in 0..8 {
            last = train_epoch(&mut m, &x, &y, 8, &sgd, &mut rng);
        }
        assert!(last < first * 0.7, "loss should drop: {first} -> {last}");
        let acc = evaluate(&m, &x, &y, 8, &mut FloatConvExecutor);
        assert!(acc > 0.8, "toy accuracy {acc}");
    }

    #[test]
    fn evaluate_empty_set_is_zero() {
        let m = Model::build(ModelCfg::small(Arch::LeNet5, 4));
        let x = Tensor::<f32>::zeros([0, 3, 16, 16]);
        let acc = evaluate(&m, &x, &[], 8, &mut FloatConvExecutor);
        assert_eq!(acc, 0.0);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn train_rejects_mismatched_labels() {
        let mut m = Model::build(ModelCfg::small(Arch::LeNet5, 4));
        let x = Tensor::<f32>::zeros([4, 3, 16, 16]);
        let mut rng = init_rng(0);
        train_epoch(&mut m, &x, &[0, 1], 2, &SgdCfg::default(), &mut rng);
    }

    #[test]
    fn lr_schedules() {
        assert_eq!(LrSchedule::Constant.lr_at(0.1, 7), 0.1);
        let step = LrSchedule::Step { every: 2, gamma: 0.5 };
        assert!((step.lr_at(0.1, 0) - 0.1).abs() < 1e-7);
        assert!((step.lr_at(0.1, 2) - 0.05).abs() < 1e-7);
        assert!((step.lr_at(0.1, 5) - 0.025).abs() < 1e-7);
        let cos = LrSchedule::Cosine { total: 10, min_lr: 0.01 };
        assert!((cos.lr_at(0.1, 0) - 0.1).abs() < 1e-6);
        assert!((cos.lr_at(0.1, 10) - 0.01).abs() < 1e-6);
        // Monotone decreasing.
        let lrs: Vec<f32> = (0..=10).map(|e| cos.lr_at(0.1, e)).collect();
        assert!(lrs.windows(2).all(|w| w[1] <= w[0] + 1e-7));
    }

    #[test]
    fn scheduled_training_reduces_loss() {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        let mut m = Model::build(cfg);
        let (x, y) = toy_data(32, 8);
        let mut rng = init_rng(19);
        let base = SgdCfg { lr: 0.1, momentum: 0.9, weight_decay: 0.0, grad_clip: 5.0 };
        let losses = train_scheduled(
            &mut m,
            &x,
            &y,
            8,
            &base,
            LrSchedule::Cosine { total: 8, min_lr: 0.005 },
            8,
            &mut rng,
        );
        assert_eq!(losses.len(), 8);
        assert!(losses.last().unwrap() < &(losses[0] * 0.8));
    }

    #[test]
    fn gather_batch_picks_rows() {
        let x = Tensor::from_vec([3, 1, 1, 2], vec![0., 1., 2., 3., 4., 5.]);
        let (bx, by) = gather_batch(&x, &[7, 8, 9], &[2, 0]);
        assert_eq!(bx.dims(), &[2, 1, 1, 2]);
        assert_eq!(bx.as_slice(), &[4., 5., 0., 1.]);
        assert_eq!(by, vec![9, 7]);
    }

    #[test]
    fn sgd_step_moves_weights_and_clears_grads() {
        let mut m = Model::build(ModelCfg::small(Arch::LeNet5, 4));
        let before: Vec<f32> = {
            let mut v = vec![];
            m.visit_params(&mut |p| v.extend_from_slice(p.value.as_slice()));
            v
        };
        // Fake gradients of 1.0 everywhere.
        m.visit_params(&mut |p| p.grad.as_mut_slice().fill(1.0));
        sgd_step(&mut m, &SgdCfg { lr: 0.01, momentum: 0.0, weight_decay: 0.0, grad_clip: 0.0 });
        let mut after = vec![];
        m.visit_params(&mut |p| after.extend_from_slice(p.value.as_slice()));
        let moved = before.iter().zip(&after).filter(|(a, b)| (*a - *b).abs() > 1e-9).count();
        assert!(moved > before.len() / 2, "most weights should move");
        let mut all_zero = true;
        m.visit_params(&mut |p| all_zero &= p.grad.max_abs() == 0.0);
        assert!(all_zero, "grads cleared after step");
    }
}
