//! Per-layer precision policies: the IR behind mixed-precision execution.
//!
//! The paper's central claim is that precision should follow output
//! sensitivity, and its Sec. 6.4 ablation varies threshold granularity
//! per layer. A [`PrecisionPolicy`] makes that a first-class, serializable
//! artifact: each conv layer (addressed by its paper name, `"C1"`,
//! `"C2"`, ...) is assigned a [`Route`] — run in float, at a static
//! DoReFa bit width, under input-directed DRQ, or under output-directed
//! ODQ — with a default route for unlisted layers.
//!
//! The policy is pure data (scalar fields only): this crate knows nothing
//! about the engines that execute routes. `odq-serve` builds one
//! sub-engine per distinct route and dispatches by layer name; `odq-nn`'s
//! ODQM manifests embed a policy next to the weights so it versions,
//! publishes, and rolls back with them; `odq-registry` validates at
//! publish time that every named route matches a real conv layer; and
//! `odq-conformance` mirrors each route with its scalar oracle.
//!
//! [`auto_policy`] is the greedy builder: given recorded per-layer ODQ
//! sensitive fractions, it assigns the cheapest acceptable route per
//! layer — ODQ where most outputs are insensitive, otherwise the smallest
//! static bit width whose weight SQNR clears a floor, falling back to
//! float when none does.

use std::borrow::Cow;
use std::io::{self, Read, Write};

use odq_quant::sqnr::weight_bits_for_sqnr;

use crate::models::Model;
use crate::serialize::{read_str, read_u32, write_str, write_u32, CheckpointError};
use crate::Layer as _;

/// How one conv layer executes under a [`PrecisionPolicy`].
///
/// Routes carry plain scalars (no engine config structs) so the policy IR
/// stays engine-agnostic; executors reconstruct their native configs from
/// these fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Route {
    /// Float reference execution (honors QAT fake-quantization).
    Float,
    /// Static DoReFa quantization at fixed widths.
    Static {
        /// Weight bit width (1..=16; symmetric grid at 16).
        w_bits: u8,
        /// Activation bit width (1..=16).
        a_bits: u8,
        /// Activation clip range.
        a_clip: f32,
    },
    /// Input-directed DRQ (the baseline's region-masked mixed precision).
    Drq {
        /// High-precision bit width for sensitive regions.
        hi_bits: u8,
        /// Low-precision bit width for insensitive regions.
        lo_bits: u8,
        /// Activation clip range.
        a_clip: f32,
        /// Square region edge for the input sensitivity test.
        region: u32,
        /// Input-region sensitivity threshold.
        input_threshold: f32,
    },
    /// Output-directed dynamic quantization (the paper's method).
    Odq {
        /// Output sensitivity threshold.
        threshold: f32,
        /// Prefer the genuinely sparse executor path when statistics are
        /// not being recorded (identical outputs either way).
        sparse: bool,
    },
}

impl Route {
    /// Short stable label for ledgers and per-route stats sections.
    /// Distinct route *kinds* get distinct labels; two ODQ routes with
    /// different thresholds aggregate under one `"odq"` section.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            Route::Float => Cow::Borrowed("float"),
            Route::Static { w_bits, a_bits, .. } if w_bits == a_bits => {
                Cow::Owned(format!("int{w_bits}"))
            }
            Route::Static { w_bits, a_bits, .. } => Cow::Owned(format!("w{w_bits}a{a_bits}")),
            Route::Drq { .. } => Cow::Borrowed("drq"),
            Route::Odq { .. } => Cow::Borrowed("odq"),
        }
    }

    /// Structural sanity: bit widths in range, thresholds finite.
    pub fn validate(&self) -> Result<(), String> {
        let bits_ok = |what: &str, b: u8| {
            if (1..=16).contains(&b) {
                Ok(())
            } else {
                Err(format!("{what} bit width {b} outside 1..=16"))
            }
        };
        match *self {
            Route::Float => Ok(()),
            Route::Static { w_bits, a_bits, a_clip } => {
                bits_ok("weight", w_bits)?;
                bits_ok("activation", a_bits)?;
                if !(a_clip.is_finite() && a_clip > 0.0) {
                    return Err(format!("activation clip {a_clip} must be finite and positive"));
                }
                Ok(())
            }
            Route::Drq { hi_bits, lo_bits, a_clip, region, input_threshold } => {
                bits_ok("high-precision", hi_bits)?;
                bits_ok("low-precision", lo_bits)?;
                if lo_bits > hi_bits {
                    return Err(format!("lo_bits {lo_bits} exceeds hi_bits {hi_bits}"));
                }
                if region == 0 {
                    return Err("DRQ region edge must be at least 1".into());
                }
                if !(a_clip.is_finite() && a_clip > 0.0) {
                    return Err(format!("activation clip {a_clip} must be finite and positive"));
                }
                if !input_threshold.is_finite() {
                    return Err(format!("input threshold {input_threshold} must be finite"));
                }
                Ok(())
            }
            Route::Odq { threshold, .. } => {
                if threshold.is_nan() {
                    return Err("ODQ threshold must not be NaN".into());
                }
                Ok(())
            }
        }
    }
}

/// A per-conv-layer precision assignment: named overrides over a default
/// route. Layer entries are kept sorted and unique, so two policies with
/// the same assignments compare equal regardless of insertion order, and
/// serialization is canonical.
#[derive(Clone, Debug, PartialEq)]
pub struct PrecisionPolicy {
    default: Route,
    layers: Vec<(String, Route)>,
}

impl PrecisionPolicy {
    /// A policy routing every layer the same way.
    pub fn uniform(default: Route) -> Self {
        Self { default, layers: Vec::new() }
    }

    /// Set (or replace) the route for one named layer.
    pub fn set(&mut self, name: impl Into<String>, route: Route) -> &mut Self {
        let name = name.into();
        match self.layers.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
            Ok(i) => self.layers[i].1 = route,
            Err(i) => self.layers.insert(i, (name, route)),
        }
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, name: impl Into<String>, route: Route) -> Self {
        self.set(name, route);
        self
    }

    /// The route layer `name` executes under.
    pub fn route_for(&self, name: &str) -> Route {
        match self.layers.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.layers[i].1,
            Err(_) => self.default,
        }
    }

    /// The fallback route for unlisted layers.
    pub fn default_route(&self) -> Route {
        self.default
    }

    /// Named layer overrides, sorted by layer name.
    pub fn layers(&self) -> &[(String, Route)] {
        &self.layers
    }

    /// Every distinct route this policy can dispatch to (default first),
    /// deduplicated by exact field equality — the set of sub-engines a
    /// routed executor needs.
    pub fn distinct_routes(&self) -> Vec<Route> {
        let mut out = vec![self.default];
        for (_, r) in &self.layers {
            if !out.contains(r) {
                out.push(*r);
            }
        }
        out
    }

    /// Validate this policy against a concrete model: every route must be
    /// structurally sane and every named layer must be a real conv layer
    /// of `model`. This is what the registry runs at publish time, so a
    /// policy that routes a layer the candidate does not have can never
    /// become routable.
    pub fn validate(&self, model: &mut Model) -> Result<(), String> {
        self.default.validate().map_err(|e| format!("default route: {e}"))?;
        for (name, route) in &self.layers {
            route.validate().map_err(|e| format!("route for layer {name:?}: {e}"))?;
        }
        let mut conv_names: Vec<String> = Vec::new();
        model.net.visit_convs_mut(&mut |c| conv_names.push(c.name.clone()));
        for (name, _) in &self.layers {
            if !conv_names.iter().any(|n| n == name) {
                return Err(format!(
                    "policy routes layer {name:?}, but model {:?} has no conv layer by that name \
                     (layers: {conv_names:?})",
                    model.name
                ));
            }
        }
        Ok(())
    }

    /// Serialize the policy (versioned binary chunk; f32 fields as raw bit
    /// patterns, so a write/read cycle is bit-exact).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_u32(w, POLICY_VERSION)?;
        write_route(w, &self.default)?;
        write_u32(w, self.layers.len() as u32)?;
        for (name, route) in &self.layers {
            write_str(w, name)?;
            write_route(w, route)?;
        }
        Ok(())
    }

    /// Deserialize a policy written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CheckpointError> {
        let version = read_u32(r)?;
        if version != POLICY_VERSION {
            return Err(CheckpointError::Format(format!("unsupported policy version {version}")));
        }
        let default = read_route(r)?;
        let count = read_u32(r)? as usize;
        if count > 1 << 16 {
            return Err(CheckpointError::Format(format!("implausible policy layer count {count}")));
        }
        let mut policy = Self::uniform(default);
        for _ in 0..count {
            let name = read_str(r, "policy layer name")?;
            let route = read_route(r)?;
            policy.set(name, route);
        }
        Ok(policy)
    }
}

/// Version of the serialized policy chunk embedded in ODQM manifests.
pub const POLICY_VERSION: u32 = 1;

fn write_route(w: &mut impl Write, route: &Route) -> io::Result<()> {
    match *route {
        Route::Float => write_u32(w, 0),
        Route::Static { w_bits, a_bits, a_clip } => {
            write_u32(w, 1)?;
            write_u32(w, w_bits as u32)?;
            write_u32(w, a_bits as u32)?;
            write_u32(w, a_clip.to_bits())
        }
        Route::Drq { hi_bits, lo_bits, a_clip, region, input_threshold } => {
            write_u32(w, 2)?;
            write_u32(w, hi_bits as u32)?;
            write_u32(w, lo_bits as u32)?;
            write_u32(w, a_clip.to_bits())?;
            write_u32(w, region)?;
            write_u32(w, input_threshold.to_bits())
        }
        Route::Odq { threshold, sparse } => {
            write_u32(w, 3)?;
            write_u32(w, threshold.to_bits())?;
            write_u32(w, sparse as u32)
        }
    }
}

fn read_route(r: &mut impl Read) -> Result<Route, CheckpointError> {
    Ok(match read_u32(r)? {
        0 => Route::Float,
        1 => Route::Static {
            w_bits: read_u32(r)? as u8,
            a_bits: read_u32(r)? as u8,
            a_clip: f32::from_bits(read_u32(r)?),
        },
        2 => Route::Drq {
            hi_bits: read_u32(r)? as u8,
            lo_bits: read_u32(r)? as u8,
            a_clip: f32::from_bits(read_u32(r)?),
            region: read_u32(r)?,
            input_threshold: f32::from_bits(read_u32(r)?),
        },
        3 => Route::Odq { threshold: f32::from_bits(read_u32(r)?), sparse: read_u32(r)? != 0 },
        other => return Err(CheckpointError::Format(format!("unknown route tag {other}"))),
    })
}

/// Knobs for the greedy [`auto_policy`] builder.
#[derive(Clone, Copy, Debug)]
pub struct AutoPolicyCfg {
    /// Threshold used for layers routed to ODQ.
    pub odq_threshold: f32,
    /// A layer whose recorded sensitive fraction is at or below this
    /// routes to ODQ: most of its outputs skip the high-precision pass,
    /// so ODQ is the cheapest assignment that preserves them.
    pub odq_ceiling: f64,
    /// Smallest static bit width the builder may assign.
    pub min_bits: u8,
    /// Largest static bit width the builder tries before giving up and
    /// routing the layer to float.
    pub max_bits: u8,
    /// Weight-SQNR floor (dB): the assigned static width must quantize
    /// the layer's weights at least this faithfully.
    pub sqnr_floor_db: f32,
}

impl Default for AutoPolicyCfg {
    fn default() -> Self {
        Self { odq_threshold: 0.3, odq_ceiling: 0.5, min_bits: 2, max_bits: 8, sqnr_floor_db: 16.0 }
    }
}

/// Greedily assign the cheapest acceptable route to every conv layer of
/// `model`, from recorded per-layer ODQ sensitive fractions (as produced
/// by `odq-core`'s recording engine) and weight SQNR:
///
/// 1. mostly-insensitive layers (fraction ≤ `odq_ceiling`) route to ODQ —
///    the work skipped is proportional to the insensitive fraction;
/// 2. otherwise the smallest `min_bits..=max_bits` static width whose
///    weight SQNR clears `sqnr_floor_db` wins (cheapest bits subject to
///    the floor);
/// 3. layers no static width can represent faithfully enough fall back to
///    float.
///
/// Layers absent from `sensitivity` are treated as fully sensitive.
/// The returned policy names every conv layer explicitly; its default
/// route is the widest static width, so an unlisted layer (impossible for
/// this model, conservative for any other) never loses precision.
pub fn auto_policy(
    model: &mut Model,
    sensitivity: &[(String, f64)],
    cfg: &AutoPolicyCfg,
) -> PrecisionPolicy {
    let max_bits = cfg.max_bits.clamp(1, 16);
    let min_bits = cfg.min_bits.clamp(1, max_bits);
    let mut policy =
        PrecisionPolicy::uniform(Route::Static { w_bits: max_bits, a_bits: max_bits, a_clip: 1.0 });
    let mut assignments: Vec<(String, Route)> = Vec::new();
    model.net.visit_convs_mut(&mut |c| {
        let frac = sensitivity.iter().find(|(n, _)| n == &c.name).map_or(1.0, |(_, f)| *f);
        let route = if frac <= cfg.odq_ceiling {
            Route::Odq { threshold: cfg.odq_threshold, sparse: false }
        } else {
            match weight_bits_for_sqnr(&c.weight.value, cfg.sqnr_floor_db, min_bits, max_bits) {
                Some(bits) => Route::Static { w_bits: bits, a_bits: bits, a_clip: 1.0 },
                None => Route::Float,
            }
        };
        assignments.push((c.name.clone(), route));
    });
    for (name, route) in assignments {
        policy.set(name, route);
    }
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Model, ModelCfg};
    use crate::Arch;

    fn model() -> Model {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        Model::build(cfg)
    }

    #[test]
    fn route_lookup_respects_overrides_and_default() {
        let p = PrecisionPolicy::uniform(Route::Float)
            .with("C2", Route::Odq { threshold: 0.3, sparse: false })
            .with("C1", Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 });
        assert_eq!(p.route_for("C1"), Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 });
        assert_eq!(p.route_for("C2"), Route::Odq { threshold: 0.3, sparse: false });
        assert_eq!(p.route_for("C9"), Route::Float);
        assert_eq!(p.distinct_routes().len(), 3);
        // Insertion order does not matter: the layer list is canonical.
        let q = PrecisionPolicy::uniform(Route::Float)
            .with("C1", Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 })
            .with("C2", Route::Odq { threshold: 0.3, sparse: false });
        assert_eq!(p, q);
    }

    #[test]
    fn distinct_routes_dedupes_by_exact_fields() {
        let p = PrecisionPolicy::uniform(Route::Odq { threshold: 0.3, sparse: false })
            .with("C1", Route::Odq { threshold: 0.3, sparse: false })
            .with("C2", Route::Odq { threshold: 0.6, sparse: false });
        // C1 shares the default's engine; C2 needs its own.
        assert_eq!(p.distinct_routes().len(), 2);
    }

    #[test]
    fn policy_roundtrips_bit_exactly() {
        let p = PrecisionPolicy::uniform(Route::Static { w_bits: 8, a_bits: 4, a_clip: 0.75 })
            .with("C1", Route::Float)
            .with(
                "C3",
                Route::Drq {
                    hi_bits: 8,
                    lo_bits: 4,
                    a_clip: 1.0,
                    region: 2,
                    input_threshold: 0.25,
                },
            )
            .with("C2", Route::Odq { threshold: f32::MIN_POSITIVE, sparse: true });
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        let q = PrecisionPolicy::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(p, q);
        // Threshold bit patterns survive exactly.
        match q.route_for("C2") {
            Route::Odq { threshold, sparse } => {
                assert_eq!(threshold.to_bits(), f32::MIN_POSITIVE.to_bits());
                assert!(sparse);
            }
            other => panic!("wrong route {other:?}"),
        }
    }

    #[test]
    fn read_rejects_bad_version_and_tag() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 99).unwrap();
        assert!(PrecisionPolicy::read_from(&mut std::io::Cursor::new(&buf)).is_err());
        let mut buf = Vec::new();
        write_u32(&mut buf, POLICY_VERSION).unwrap();
        write_u32(&mut buf, 7).unwrap(); // bogus route tag
        assert!(PrecisionPolicy::read_from(&mut std::io::Cursor::new(&buf)).is_err());
    }

    #[test]
    fn validate_rejects_unknown_layers_and_bad_routes() {
        let mut m = model();
        let good = PrecisionPolicy::uniform(Route::Float)
            .with("C1", Route::Odq { threshold: 0.3, sparse: false });
        good.validate(&mut m).unwrap();

        let ghost = PrecisionPolicy::uniform(Route::Float).with("C99", Route::Float);
        let err = ghost.validate(&mut m).unwrap_err();
        assert!(err.contains("C99"), "{err}");

        let bad_bits =
            PrecisionPolicy::uniform(Route::Static { w_bits: 0, a_bits: 8, a_clip: 1.0 });
        assert!(bad_bits.validate(&mut m).is_err());
        let bad_drq = PrecisionPolicy::uniform(Route::Drq {
            hi_bits: 4,
            lo_bits: 8,
            a_clip: 1.0,
            region: 2,
            input_threshold: 0.1,
        });
        assert!(bad_drq.validate(&mut m).is_err());
    }

    #[test]
    fn auto_policy_names_every_conv_and_follows_sensitivity() {
        let mut m = model();
        let mut names: Vec<String> = Vec::new();
        m.net.visit_convs_mut(&mut |c| names.push(c.name.clone()));
        // First layer mostly insensitive, rest fully sensitive.
        let sens: Vec<(String, f64)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), if i == 0 { 0.1 } else { 1.0 }))
            .collect();
        let p = auto_policy(&mut m, &sens, &AutoPolicyCfg::default());
        assert_eq!(p.layers().len(), names.len(), "every conv layer is routed explicitly");
        assert!(
            matches!(p.route_for(&names[0]), Route::Odq { .. }),
            "mostly-insensitive layer routes to ODQ"
        );
        for n in &names[1..] {
            assert!(
                matches!(p.route_for(n), Route::Static { .. } | Route::Float),
                "sensitive layer {n} stays static/float, got {:?}",
                p.route_for(n)
            );
        }
        p.validate(&mut m).unwrap();

        // A stricter SQNR floor never assigns *fewer* bits.
        let strict = auto_policy(
            &mut m,
            &sens,
            &AutoPolicyCfg { sqnr_floor_db: 30.0, ..Default::default() },
        );
        for n in &names[1..] {
            let bits = |r: Route| match r {
                Route::Static { w_bits, .. } => w_bits as u32,
                Route::Float => u32::MAX,
                _ => 0,
            };
            assert!(bits(strict.route_for(n)) >= bits(p.route_for(n)));
        }
    }
}
