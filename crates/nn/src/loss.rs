//! Softmax cross-entropy loss and classification metrics.

use odq_tensor::Tensor;

/// Numerically-stable softmax cross-entropy.
///
/// `logits: [N, C]`, `labels: [N]`. Returns `(mean_loss, dlogits)` where
/// `dlogits = (softmax - onehot) / N`.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let n = logits.dims()[0];
    let c = logits.dims()[1];
    assert_eq!(labels.len(), n, "label count mismatch");

    let mut dlogits = Tensor::zeros([n, c]);
    let mut total = 0.0f64;
    let ls = logits.as_slice();
    let ds = dlogits.as_mut_slice();
    for i in 0..n {
        let row = &ls[i * c..(i + 1) * c];
        let label = labels[i];
        assert!(label < c, "label {label} out of range ({c} classes)");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let logsum = sum.ln() + max;
        total += (logsum - row[label]) as f64;
        let drow = &mut ds[i * c..(i + 1) * c];
        for (j, d) in drow.iter_mut().enumerate() {
            let p = exps[j] / sum;
            *d = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((total / n as f64) as f32, dlogits)
}

/// Argmax predictions for `[N, C]` logits.
pub fn predictions(logits: &Tensor) -> Vec<usize> {
    let n = logits.dims()[0];
    let c = logits.dims()[1];
    let ls = logits.as_slice();
    (0..n)
        .map(|i| {
            let row = &ls[i * c..(i + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

/// Top-1 accuracy of logits against labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = predictions(logits);
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / preds.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_of_confident_correct_prediction_is_small() {
        let logits = Tensor::from_vec([1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
        let (loss_wrong, _) = cross_entropy(&logits, &[1]);
        assert!(loss_wrong > 5.0, "loss {loss_wrong}");
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::from_vec([2, 4], vec![0.0; 8]);
        let (loss, dl) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = dl.as_slice()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.3, -0.2, 0.9, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, dl) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = cross_entropy(&lp, &labels);
            let (fm, _) = cross_entropy(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dl.as_slice()[i]).abs() < 1e-3, "dlogits[{i}]");
        }
    }

    #[test]
    fn numerical_stability_with_large_logits() {
        let logits = Tensor::from_vec([1, 2], vec![1000.0, -1000.0]);
        let (loss, dl) = cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(dl.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_and_predictions() {
        let logits = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 2.0, -1.0]);
        assert_eq!(predictions(&logits), vec![0, 1, 0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }
}
