//! Fully-connected layer and the flatten adapter.

use odq_tensor::gemm::{gemm_f32, gemm_f32_at, gemm_f32_bt};
use odq_tensor::{Shape, Tensor};
use rand_chacha::ChaCha8Rng;

use crate::executor::ConvExecutor;
use crate::param::Param;

use super::Layer;

/// Fully-connected layer: `y = x Wᵀ + b` with `x: [N, D]`, `W: [O, D]`.
pub struct Linear {
    /// Weight matrix `[out_features, in_features]`.
    pub weight: Param,
    /// Bias `[out_features]`.
    pub bias: Param,
    in_features: usize,
    out_features: usize,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// New FC layer with Kaiming-initialized weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut ChaCha8Rng) -> Self {
        Self {
            weight: Param::kaiming([out_features, in_features], in_features, rng),
            bias: Param::zeros([out_features]),
            in_features,
            out_features,
            cache_x: None,
        }
    }

    fn compute(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        assert_eq!(x.dims()[1], self.in_features, "Linear input features mismatch");
        let mut y = Tensor::zeros([n, self.out_features]);
        // y = x (N x D) * W^T (D x O)
        gemm_f32_bt(
            x.as_slice(),
            self.weight.value.as_slice(),
            y.as_mut_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        let b = self.bias.value.as_slice();
        for row in y.as_mut_slice().chunks_mut(self.out_features) {
            for (v, &bj) in row.iter_mut().zip(b) {
                *v += bj;
            }
        }
        y
    }
}

impl Layer for Linear {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        self.compute(x)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let y = self.compute(x);
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Linear backward without forward_train");
        let n = x.dims()[0];
        let (d, o) = (self.in_features, self.out_features);
        assert_eq!(dy.dims(), &[n, o], "Linear dy shape mismatch");

        // dW[o, d] = Σ_n dy[n, o] * x[n, d]  =  dyᵀ · x
        let mut dw = vec![0.0f32; o * d];
        gemm_f32_at(dy.as_slice(), x.as_slice(), &mut dw, o, n, d);
        for (g, v) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
            *g += v;
        }

        // db = column sums of dy
        for row in dy.as_slice().chunks(o) {
            for (g, &v) in self.bias.grad.as_mut_slice().iter_mut().zip(row) {
                *g += v;
            }
        }

        // dx = dy · W  ([N, O] x [O, D])
        let mut dx = Tensor::zeros([n, d]);
        gemm_f32(dy.as_slice(), self.weight.value.as_slice(), dx.as_mut_slice(), n, o, d);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> String {
        format!("fc{}x{}", self.out_features, self.in_features)
    }
}

/// Flatten `[N, ...] -> [N, prod(...)]`.
pub struct Flatten {
    cache_shape: Option<Shape>,
}

impl Flatten {
    /// Construct the flatten adapter.
    pub fn new() -> Self {
        Self { cache_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        let n = x.dims()[0];
        let rest = x.numel() / n;
        x.clone().reshape([n, rest])
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.cache_shape = Some(x.shape().clone());
        let n = x.dims()[0];
        let rest = x.numel() / n;
        x.clone().reshape([n, rest])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let shape = self.cache_shape.take().expect("Flatten backward without forward_train");
        dy.clone().reshape(shape)
    }

    fn name(&self) -> String {
        "flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::init_rng;

    #[test]
    fn linear_forward_known_values() {
        let mut rng = init_rng(0);
        let mut l = Linear::new(2, 3, &mut rng);
        l.weight.value = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        l.bias.value = Tensor::from_vec([3], vec![0.5, -0.5, 0.0]);
        let x = Tensor::from_vec([1, 2], vec![2.0, 3.0]);
        let y = l.forward_train(&x);
        assert_eq!(y.as_slice(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn linear_backward_finite_difference() {
        let mut rng = init_rng(7);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec([2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        let dy = Tensor::from_vec([2, 2], vec![1.0, -1.0, 0.5, 0.25]);

        let _ = l.forward_train(&x);
        let dx = l.backward(&dy);

        let loss = |l: &Linear, x: &Tensor| -> f32 {
            let y = l.compute(x);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-3;
        // input grads
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * eps);
            assert!((fd - dx.as_slice()[i]).abs() < 1e-2, "dx[{i}]");
        }
        // weight grads
        for i in 0..l.weight.numel() {
            let mut lp = Linear::new(3, 2, &mut init_rng(7));
            lp.weight.value = l.weight.value.clone();
            lp.bias.value = l.bias.value.clone();
            lp.weight.value.as_mut_slice()[i] += eps;
            let mut lm = Linear::new(3, 2, &mut init_rng(7));
            lm.weight.value = l.weight.value.clone();
            lm.bias.value = l.bias.value.clone();
            lm.weight.value.as_mut_slice()[i] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((fd - l.weight.grad.as_slice()[i]).abs() < 1e-2, "dw[{i}]");
        }
        // bias grads = column sums of dy
        assert!((l.bias.grad.as_slice()[0] - 1.5).abs() < 1e-6);
        assert!((l.bias.grad.as_slice()[1] + 0.75).abs() < 1e-6);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec([2, 2, 1, 2], (0..8).map(|i| i as f32).collect::<Vec<_>>());
        let y = f.forward_train(&x);
        assert_eq!(y.dims(), &[2, 4]);
        let dx = f.backward(&y);
        assert_eq!(dx.dims(), &[2, 2, 1, 2]);
        assert_eq!(dx.as_slice(), x.as_slice());
    }
}
