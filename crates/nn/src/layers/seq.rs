//! Sequential container.

use odq_tensor::Tensor;

use crate::executor::ConvExecutor;
use crate::param::Param;

use super::Layer;

/// A sequence of layers applied in order. Implements [`Layer`] itself, so
/// sequences nest.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty sequence.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterate over child layers.
    pub fn iter(&self) -> impl Iterator<Item = &Box<dyn Layer>> {
        self.layers.iter()
    }

    /// Iterate mutably over child layers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn Layer>> {
        self.layers.iter_mut()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor {
        let mut h = x.clone();
        for l in &self.layers {
            h = l.forward_eval(&h, exec);
        }
        h
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward_train(&h);
        }
        h
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut d = dy.clone();
        for l in self.layers.iter_mut().rev() {
            d = l.backward(&d);
        }
        d
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut super::conv::Conv2d)) {
        for l in &mut self.layers {
            l.visit_convs_mut(f);
        }
    }

    fn visit_bns_mut(&mut self, f: &mut dyn FnMut(&mut super::bn::BatchNorm2d)) {
        for l in &mut self.layers {
            l.visit_bns_mut(f);
        }
    }

    fn name(&self) -> String {
        format!("sequential[{}]", self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;
    use crate::layers::act::ReLU;

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut s = Sequential::new();
        s.push(ReLU::new());
        s.push(ReLU::clipped(1.0));
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, 1.5, 2.0]);
        let y = s.forward_train(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.5, 1.0, 1.0]);
        let dy = Tensor::from_vec([4], vec![1.0; 4]);
        let dx = s.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn eval_matches_train() {
        let mut s = Sequential::new();
        s.push(ReLU::new());
        let x = Tensor::from_vec([2], vec![-3.0, 3.0]);
        let yt = s.forward_train(&x);
        let ye = s.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(yt.as_slice(), ye.as_slice());
    }
}
