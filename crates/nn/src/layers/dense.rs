//! DenseNet building blocks: dense layers (channel concatenation) and
//! transition layers.

use odq_tensor::Tensor;
use rand_chacha::ChaCha8Rng;

use crate::executor::ConvExecutor;
use crate::param::Param;
use crate::util::{concat_channels, split_channels};

use super::act::ReLU;
use super::bn::BatchNorm2d;
use super::conv::{Conv2d, QatCfg};
use super::pool::AvgPool2d;
use super::Layer;

/// One dense layer: `y = concat(x, conv3x3(relu(bn(x))))`, growing the
/// channel count by `growth`.
struct DenseLayer {
    bn: BatchNorm2d,
    relu: ReLU,
    conv: Conv2d,
    in_ch: usize,
    growth: usize,
}

impl DenseLayer {
    fn new(
        name: impl Into<String>,
        in_ch: usize,
        growth: usize,
        act_clip: Option<f32>,
        qat: Option<QatCfg>,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let mut conv = Conv2d::new(name, in_ch, growth, 3, 1, 1, false, rng);
        conv.qat = qat;
        Self {
            bn: BatchNorm2d::new(in_ch),
            relu: match act_clip {
                Some(c) => ReLU::clipped(c),
                None => ReLU::new(),
            },
            conv,
            in_ch,
            growth,
        }
    }
}

/// A DenseNet block of `n_layers` dense layers; channels grow from `in_ch`
/// to `in_ch + n_layers * growth`.
pub struct DenseBlock {
    layers: Vec<DenseLayer>,
}

impl DenseBlock {
    /// Build a dense block. Conv names continue the paper's `C<k>`
    /// numbering starting at `first_conv_idx`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        first_conv_idx: usize,
        in_ch: usize,
        growth: usize,
        n_layers: usize,
        act_clip: Option<f32>,
        qat: Option<QatCfg>,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let mut layers = Vec::with_capacity(n_layers);
        let mut c = in_ch;
        for i in 0..n_layers {
            layers.push(DenseLayer::new(
                format!("C{}", first_conv_idx + i),
                c,
                growth,
                act_clip,
                qat,
                rng,
            ));
            c += growth;
        }
        Self { layers }
    }

    /// Output channel count for the given input channels.
    pub fn out_channels(&self, in_ch: usize) -> usize {
        in_ch + self.layers.iter().map(|l| l.growth).sum::<usize>()
    }

    /// The block's conv layers.
    pub fn convs(&self) -> Vec<&Conv2d> {
        self.layers.iter().map(|l| &l.conv).collect()
    }
}

impl Layer for DenseBlock {
    fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor {
        let mut acc = x.clone();
        for l in &self.layers {
            let h = l.bn.forward_eval(&acc, exec);
            let h = l.relu.forward_eval(&h, exec);
            let new = l.conv.forward_eval(&h, exec);
            acc = concat_channels(&[&acc, &new]);
        }
        acc
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let mut acc = x.clone();
        for l in &mut self.layers {
            let h = l.bn.forward_train(&acc);
            let h = l.relu.forward_train(&h);
            let new = l.conv.forward_train(&h);
            acc = concat_channels(&[&acc, &new]);
        }
        acc
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut d = dy.clone();
        for l in self.layers.iter_mut().rev() {
            // d is the gradient w.r.t. concat(prev, new).
            let parts = split_channels(&d, &[l.in_ch, l.growth]);
            let (d_prev, d_new) = (parts[0].clone(), parts[1].clone());
            let db = l.conv.backward(&d_new);
            let db = l.relu.backward(&db);
            let mut db = l.bn.backward(&db);
            db.add_assign(&d_prev);
            d = db;
        }
        d
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.bn.visit_params(f);
            l.conv.visit_params(f);
        }
    }

    fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        for l in &mut self.layers {
            f(&mut l.conv);
        }
    }

    fn visit_bns_mut(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        for l in &mut self.layers {
            f(&mut l.bn);
        }
    }

    fn name(&self) -> String {
        format!("denseblock[{}]", self.layers.len())
    }
}

/// DenseNet transition: `avgpool2(conv1x1(relu(bn(x))))`, compressing
/// channels.
pub struct Transition {
    bn: BatchNorm2d,
    relu: ReLU,
    conv: Conv2d,
    pool: AvgPool2d,
}

impl Transition {
    /// Build a transition mapping `in_ch -> out_ch` and halving the spatial
    /// size.
    pub fn new(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        act_clip: Option<f32>,
        qat: Option<QatCfg>,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let mut conv = Conv2d::new(name, in_ch, out_ch, 1, 1, 0, false, rng);
        conv.qat = qat;
        Self {
            bn: BatchNorm2d::new(in_ch),
            relu: match act_clip {
                Some(c) => ReLU::clipped(c),
                None => ReLU::new(),
            },
            conv,
            pool: AvgPool2d::new(2),
        }
    }

    /// The transition's conv layer.
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }
}

impl Layer for Transition {
    fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor {
        let h = self.bn.forward_eval(x, exec);
        let h = self.relu.forward_eval(&h, exec);
        let h = self.conv.forward_eval(&h, exec);
        self.pool.forward_eval(&h, exec)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let h = self.bn.forward_train(x);
        let h = self.relu.forward_train(&h);
        let h = self.conv.forward_train(&h);
        self.pool.forward_train(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d = self.pool.backward(dy);
        let d = self.conv.backward(&d);
        let d = self.relu.backward(&d);
        self.bn.backward(&d)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.bn.visit_params(f);
        self.conv.visit_params(f);
    }

    fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        f(&mut self.conv);
    }

    fn visit_bns_mut(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.bn);
    }

    fn name(&self) -> String {
        "transition".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::init_rng;

    fn input(n: usize, c: usize, hw: usize) -> Tensor {
        let data: Vec<f32> =
            (0..n * c * hw * hw).map(|i| ((i * 61 + 7) % 40) as f32 / 40.0).collect();
        Tensor::from_vec([n, c, hw, hw], data)
    }

    #[test]
    fn dense_block_grows_channels() {
        let mut rng = init_rng(1);
        let mut b = DenseBlock::new(2, 4, 3, 2, None, None, &mut rng);
        let x = input(1, 4, 8);
        let y = b.forward_train(&x);
        assert_eq!(y.dims(), &[1, 10, 8, 8]); // 4 + 2*3
        assert_eq!(b.out_channels(4), 10);
        assert_eq!(b.convs().len(), 2);
    }

    #[test]
    fn dense_block_preserves_input_in_first_channels() {
        let mut rng = init_rng(2);
        let mut b = DenseBlock::new(2, 2, 1, 1, None, None, &mut rng);
        let x = input(1, 2, 4);
        let y = b.forward_train(&x);
        // The first in_ch channels of the output are the input verbatim.
        assert_eq!(&y.as_slice()[..x.numel()], x.as_slice());
    }

    #[test]
    fn dense_block_backward_shapes_and_nonzero() {
        let mut rng = init_rng(3);
        let mut b = DenseBlock::new(2, 3, 2, 3, None, None, &mut rng);
        let x = input(2, 3, 4);
        let y = b.forward_train(&x);
        let dy = Tensor::full(y.shape().clone(), 0.5);
        let dx = b.backward(&dy);
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.max_abs() > 0.0);
        let mut n = 0;
        b.visit_params(&mut |_| n += 1);
        assert_eq!(n, 3 * 3); // 3 layers × (bn gamma, bn beta, conv w)
    }

    #[test]
    fn transition_halves_spatial() {
        let mut rng = init_rng(4);
        let mut t = Transition::new("C5", 6, 3, None, None, &mut rng);
        let x = input(1, 6, 8);
        let y = t.forward_train(&x);
        assert_eq!(y.dims(), &[1, 3, 4, 4]);
        let dx = t.backward(&Tensor::full(y.shape().clone(), 1.0));
        assert_eq!(dx.dims(), x.dims());
    }
}
