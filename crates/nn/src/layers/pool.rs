//! Pooling layers (thin stateful wrappers over `odq_tensor::conv`).

use odq_tensor::conv::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward,
};
use odq_tensor::Tensor;

use crate::executor::ConvExecutor;

use super::Layer;

/// Non-overlapping average pooling with window `k`.
pub struct AvgPool2d {
    k: usize,
    cache_hw: Option<(usize, usize)>,
}

impl AvgPool2d {
    /// Average pooling with square window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        Self { k, cache_hw: None }
    }
}

impl Layer for AvgPool2d {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        avg_pool2d(x, self.k)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.cache_hw = Some((x.dims()[2], x.dims()[3]));
        avg_pool2d(x, self.k)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (h, w) = self.cache_hw.take().expect("AvgPool2d backward without forward_train");
        avg_pool2d_backward(dy, self.k, h, w)
    }

    fn name(&self) -> String {
        format!("avgpool{}", self.k)
    }
}

/// Non-overlapping max pooling with window `k`.
pub struct MaxPool2d {
    k: usize,
    cache: Option<(Vec<u32>, usize, usize)>,
}

impl MaxPool2d {
    /// Max pooling with square window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        Self { k, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        max_pool2d(x, self.k).0
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let (y, arg) = max_pool2d(x, self.k);
        self.cache = Some((arg, x.dims()[2], x.dims()[3]));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (arg, h, w) = self.cache.take().expect("MaxPool2d backward without forward_train");
        max_pool2d_backward(dy, &arg, self.k, h, w)
    }

    fn name(&self) -> String {
        format!("maxpool{}", self.k)
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
pub struct GlobalAvgPool {
    cache_hw: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// Construct the pooling layer.
    pub fn new() -> Self {
        Self { cache_hw: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        global_avg_pool(x)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.cache_hw = Some((x.dims()[2], x.dims()[3]));
        global_avg_pool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (h, w) = self.cache_hw.take().expect("GlobalAvgPool backward without forward_train");
        global_avg_pool_backward(dy, h, w)
    }

    fn name(&self) -> String {
        "gap".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;

    #[test]
    fn avg_pool_layer_roundtrip() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![0.0, 2.0, 4.0, 6.0]);
        let y = p.forward_train(&x);
        assert_eq!(y.as_slice(), &[3.0]);
        let dx = p.backward(&Tensor::from_vec([1, 1, 1, 1], vec![4.0]));
        assert_eq!(dx.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn max_pool_layer_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![0.0, 5.0, 4.0, 1.0]);
        let y = p.forward_train(&x);
        assert_eq!(y.as_slice(), &[5.0]);
        let dx = p.backward(&Tensor::from_vec([1, 1, 1, 1], vec![3.0]));
        assert_eq!(dx.as_slice(), &[0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_layer_eval_matches_train() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 3.0, 5.0, 7.0]);
        let t = p.forward_train(&x);
        let e = p.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(t.as_slice(), e.as_slice());
        assert_eq!(t.as_slice(), &[2.0, 6.0]);
        assert_eq!(t.dims(), &[1, 2]);
    }
}
