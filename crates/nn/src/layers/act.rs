//! Activation layers.

use odq_tensor::Tensor;

use crate::executor::ConvExecutor;
use crate::param::Param;

use super::Layer;

/// Rectified linear unit, optionally clipped to `[0, clip]`.
///
/// The clipped form is the DoReFa-style bounded activation the quantized
/// models use: the following quantizer assumes activations live in
/// `[0, clip]`, so training with the same bound keeps the quantization
/// error small.
pub struct ReLU {
    /// Upper clip bound (`None` = plain ReLU).
    pub clip: Option<f32>,
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Plain ReLU.
    pub fn new() -> Self {
        Self { clip: None, mask: None }
    }

    /// ReLU clipped to `[0, clip]`.
    pub fn clipped(clip: f32) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        Self { clip: Some(clip), mask: None }
    }

    fn apply(&self, v: f32) -> f32 {
        let r = v.max(0.0);
        match self.clip {
            Some(c) => r.min(c),
            None => r,
        }
    }

    fn passes(&self, v: f32) -> bool {
        v > 0.0 && self.clip.is_none_or(|c| v < c)
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReLU {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        x.map(|v| self.apply(v))
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.mask = Some(x.as_slice().iter().map(|&v| self.passes(v)).collect());
        x.map(|v| self.apply(v))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("ReLU backward without forward_train");
        assert_eq!(mask.len(), dy.numel(), "ReLU cache shape mismatch");
        let data =
            dy.as_slice().iter().zip(&mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(dy.shape().clone(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        match self.clip {
            Some(c) => format!("relu[0,{c}]"),
            None => "relu".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;

    #[test]
    fn plain_relu_forward_backward() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, 3.0]);
        let y = r.forward_train(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 3.0]);
        let dy = Tensor::from_vec([4], vec![1.0, 1.0, 1.0, 1.0]);
        let dx = r.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn clipped_relu_saturates_and_gates_gradient() {
        let mut r = ReLU::clipped(1.0);
        let x = Tensor::from_vec([4], vec![-0.5, 0.5, 1.0, 2.0]);
        let y = r.forward_train(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.5, 1.0, 1.0]);
        let dy = Tensor::from_vec([4], vec![1.0; 4]);
        let dx = r.backward(&dy);
        // Gradient passes only strictly inside (0, clip).
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn eval_matches_train_forward() {
        let mut r = ReLU::clipped(1.0);
        let x = Tensor::from_vec([3], vec![-1.0, 0.7, 1.5]);
        let t = r.forward_train(&x);
        let e = r.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(t.as_slice(), e.as_slice());
    }

    #[test]
    #[should_panic(expected = "without forward_train")]
    fn backward_without_forward_panics() {
        let mut r = ReLU::new();
        r.backward(&Tensor::from_vec([1], vec![1.0]));
    }
}
