//! Batch normalization over NCHW feature maps.

use odq_tensor::Tensor;

use crate::executor::ConvExecutor;
use crate::param::Param;

use super::Layer;

/// 2-D batch normalization with learned scale/shift and running statistics.
pub struct BatchNorm2d {
    /// Learned scale (`gamma`), `[C]`.
    pub gamma: Param,
    /// Learned shift (`beta`), `[C]`.
    pub beta: Param,
    /// Running mean used at inference.
    pub running_mean: Vec<f32>,
    /// Running variance used at inference.
    pub running_var: Vec<f32>,
    channels: usize,
    eps: f32,
    momentum: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    n_per_channel: usize,
}

impl BatchNorm2d {
    /// New BN layer over `channels` feature channels.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::ones([channels]),
            beta: Param::zeros([channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        }
    }

    fn check(&self, x: &Tensor) {
        assert_eq!(x.dims().len(), 4, "BatchNorm2d expects NCHW");
        assert_eq!(x.dims()[1], self.channels, "channel mismatch");
    }
}

impl Layer for BatchNorm2d {
    fn forward_eval(&self, x: &Tensor, _exec: &mut dyn ConvExecutor) -> Tensor {
        self.check(x);
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let mut y = Tensor::zeros(x.shape().clone());
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        let plane = h * w;
        for i in 0..n {
            for ci in 0..c {
                let inv = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let base = (i * c + ci) * plane;
                for s in 0..plane {
                    ys[base + s] = g[ci] * (xs[base + s] - self.running_mean[ci]) * inv + b[ci];
                }
            }
        }
        y
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.check(x);
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let plane = h * w;
        let m = (n * plane) as f32;

        // Batch statistics per channel.
        let xs = x.as_slice();
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for i in 0..n {
            for (ci, mu) in mean.iter_mut().enumerate() {
                let base = (i * c + ci) * plane;
                for s in 0..plane {
                    *mu += xs[base + s];
                }
            }
        }
        for mu in &mut mean {
            *mu /= m;
        }
        for i in 0..n {
            for ci in 0..c {
                let base = (i * c + ci) * plane;
                for s in 0..plane {
                    let d = xs[base + s] - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= m;
        }

        // Update running stats.
        for ci in 0..c {
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
        }

        // Normalize.
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(x.shape().clone());
        let mut y = Tensor::zeros(x.shape().clone());
        {
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            let g = self.gamma.value.as_slice();
            let b = self.beta.value.as_slice();
            for i in 0..n {
                for ci in 0..c {
                    let base = (i * c + ci) * plane;
                    for s in 0..plane {
                        let v = (xs[base + s] - mean[ci]) * inv_std[ci];
                        xh[base + s] = v;
                        ys[base + s] = g[ci] * v + b[ci];
                    }
                }
            }
        }
        self.cache = Some(BnCache { xhat, inv_std, n_per_channel: n * plane });
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("BatchNorm2d backward without forward_train");
        let (n, c, h, w) = (dy.dims()[0], dy.dims()[1], dy.dims()[2], dy.dims()[3]);
        let plane = h * w;
        let m = cache.n_per_channel as f32;
        let dys = dy.as_slice();
        let xh = cache.xhat.as_slice();

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for i in 0..n {
            for ci in 0..c {
                let base = (i * c + ci) * plane;
                for s in 0..plane {
                    sum_dy[ci] += dys[base + s];
                    sum_dy_xhat[ci] += dys[base + s] * xh[base + s];
                }
            }
        }

        // Parameter gradients: dGamma = Σ dy·x̂, dBeta = Σ dy.
        for ci in 0..c {
            self.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat[ci];
            self.beta.grad.as_mut_slice()[ci] += sum_dy[ci];
        }

        // Input gradient:
        // dx = gamma * inv_std / m * (m·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dx = Tensor::zeros(dy.shape().clone());
        let dxs = dx.as_mut_slice();
        let g = self.gamma.value.as_slice();
        for i in 0..n {
            for ci in 0..c {
                let k = g[ci] * cache.inv_std[ci] / m;
                let base = (i * c + ci) * plane;
                for s in 0..plane {
                    dxs[base + s] =
                        k * (m * dys[base + s] - sum_dy[ci] - xh[base + s] * sum_dy_xhat[ci]);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_bns_mut(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(self);
    }

    fn name(&self) -> String {
        format!("bn{}", self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Tensor {
        let data: Vec<f32> = (0..2 * 2 * 2 * 2).map(|i| ((i * 37 + 5) % 13) as f32 - 6.0).collect();
        Tensor::from_vec([2, 2, 2, 2], data)
    }

    #[test]
    fn train_forward_normalizes_per_channel() {
        let mut bn = BatchNorm2d::new(2);
        let x = input();
        let y = bn.forward_train(&x);
        // With gamma=1, beta=0 output per channel has ~zero mean, unit var.
        for ci in 0..2 {
            let mut vals = vec![];
            for i in 0..2 {
                for s in 0..4 {
                    vals.push(y.as_slice()[(i * 2 + ci) * 4 + s]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm2d::new(2);
        let x = input();
        for _ in 0..50 {
            let _ = bn.forward_train(&x);
        }
        // After many identical batches, running stats converge to batch stats,
        // so eval output matches train output closely.
        let mut exec = crate::executor::FloatConvExecutor;
        let yt = bn.forward_train(&x);
        let ye = bn.forward_eval(&x, &mut exec);
        assert!(yt.max_abs_diff(&ye) < 0.05);
    }

    #[test]
    fn backward_finite_difference_on_gamma_beta() {
        let mut bn = BatchNorm2d::new(2);
        let x = input();
        let dy = Tensor::from_vec(
            [2, 2, 2, 2],
            (0..16).map(|i| ((i % 5) as f32 - 2.0) / 5.0).collect::<Vec<_>>(),
        );
        let _ = bn.forward_train(&x);
        let _ = bn.backward(&dy);

        let loss = |gamma: &[f32], beta: &[f32]| -> f32 {
            let mut b2 = BatchNorm2d::new(2);
            b2.gamma.value = Tensor::from_vec([2], gamma.to_vec());
            b2.beta.value = Tensor::from_vec([2], beta.to_vec());
            let y = b2.forward_train(&x);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-3;
        for ci in 0..2 {
            let mut gp = vec![1.0f32, 1.0];
            gp[ci] += eps;
            let mut gm = vec![1.0f32, 1.0];
            gm[ci] -= eps;
            let fd = (loss(&gp, &[0.0, 0.0]) - loss(&gm, &[0.0, 0.0])) / (2.0 * eps);
            assert!((fd - bn.gamma.grad.as_slice()[ci]).abs() < 1e-2, "dgamma[{ci}]");

            let mut bp = vec![0.0f32, 0.0];
            bp[ci] += eps;
            let mut bm = vec![0.0f32, 0.0];
            bm[ci] -= eps;
            let fd = (loss(&[1.0, 1.0], &bp) - loss(&[1.0, 1.0], &bm)) / (2.0 * eps);
            assert!((fd - bn.beta.grad.as_slice()[ci]).abs() < 1e-2, "dbeta[{ci}]");
        }
    }

    #[test]
    fn backward_input_gradient_finite_difference() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![0.5, -1.0, 2.0, 0.1]);
        let dy = Tensor::from_vec([1, 1, 2, 2], vec![1.0, -0.5, 0.25, 0.75]);
        let _ = bn.forward_train(&x);
        let dx = bn.backward(&dy);

        let loss = |x: &Tensor| -> f32 {
            let mut b2 = BatchNorm2d::new(1);
            let y = b2.forward_train(x);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((fd - dx.as_slice()[i]).abs() < 1e-2, "dx[{i}]: fd={fd}");
        }
    }
}
