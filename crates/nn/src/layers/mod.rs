//! Neural-network layers with manual forward/backward passes.
//!
//! Every layer implements [`Layer`]:
//!
//! * `forward_eval` — inference without caches; convolution layers delegate
//!   to a [`crate::executor::ConvExecutor`], which is how the
//!   quantization engines hook in.
//! * `forward_train` / `backward` — training passes with internal caches
//!   and gradient accumulation into [`Param`]s.

pub mod act;
pub mod block;
pub mod bn;
pub mod conv;
pub mod dense;
pub mod linear;
pub mod pool;
pub mod seq;

pub use act::ReLU;
pub use block::ResidualBlock;
pub use bn::BatchNorm2d;
pub use conv::{Conv2d, OdqEmuCfg, QatCfg};
pub use dense::{DenseBlock, Transition};
pub use linear::{Flatten, Linear};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use seq::Sequential;

use odq_tensor::Tensor;

use crate::executor::ConvExecutor;
use crate::param::Param;

/// A differentiable network layer.
///
/// `Send + Sync` is a supertrait so whole models can be shared across
/// serving threads (`Arc<Model>`); every layer is plain owned data, so
/// this costs implementors nothing.
pub trait Layer: Send + Sync {
    /// Inference forward pass. Conv layers route through `exec`; all other
    /// layers compute directly. Must not mutate training state.
    fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor;

    /// Training forward pass; caches whatever `backward` needs.
    fn forward_train(&mut self, x: &Tensor) -> Tensor;

    /// Backward pass: consume the cache, accumulate parameter gradients,
    /// and return the gradient with respect to the layer input.
    ///
    /// # Panics
    /// Panics if called without a preceding `forward_train`.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visit every trainable parameter (for the optimizer / grad clearing).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visit every [`conv::Conv2d`] in the subtree (used to install
    /// QAT / ODQ-emulation configs on a built model).
    fn visit_convs_mut(&mut self, _f: &mut dyn FnMut(&mut conv::Conv2d)) {}

    /// Visit every [`bn::BatchNorm2d`] in the subtree (used to
    /// snapshot/restore running statistics alongside parameters).
    fn visit_bns_mut(&mut self, _f: &mut dyn FnMut(&mut bn::BatchNorm2d)) {}

    /// Human-readable layer name.
    fn name(&self) -> String;
}
