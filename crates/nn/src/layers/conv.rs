//! 2-D convolution layer with optional quantization-aware training and
//! ODQ-in-the-loop emulation (used by the adaptive threshold search).

use odq_quant::predict::odq_predict;
use odq_quant::{quantize_activation, quantize_weights, split_qtensor};
use odq_tensor::conv::{conv2d, conv2d_backward};
use odq_tensor::{ConvGeom, Tensor};
use rand_chacha::ChaCha8Rng;

use crate::executor::{apply_qat, ConvCtx, ConvExecutor};
use crate::param::Param;

use super::Layer;

/// Quantization-aware-training configuration for a conv layer.
///
/// In training the layer fake-quantizes its weights and input activations
/// (quantize→dequantize) so the network learns under quantization noise;
/// gradients flow straight through (STE).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QatCfg {
    /// Weight bit width.
    pub w_bits: u8,
    /// Activation bit width.
    pub a_bits: u8,
    /// Activation clip range.
    pub a_clip: f32,
}

impl QatCfg {
    /// The paper's INT4 configuration (weights and activations).
    pub fn int4() -> Self {
        Self { w_bits: 4, a_bits: 4, a_clip: 1.0 }
    }
}

/// ODQ training emulation: during `forward_train`, outputs whose predictor
/// partial sum falls below `threshold` are replaced by the predictor-only
/// (low-precision) value, exactly as ODQ inference will compute them.
///
/// This is the paper's "weights are retrained after introducing the
/// threshold to the model to capture sensitivity information" step
/// (Sec. 3). Backward is straight-through: gradients are those of the
/// full-precision conv.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OdqEmuCfg {
    /// Sensitivity threshold in the dequantized output domain.
    pub threshold: f32,
}

/// 2-D convolution layer.
pub struct Conv2d {
    /// Layer name in the paper's numbering (`"C1"`, `"C2"`, ...).
    pub name: String,
    /// Filter weights `[Co, Ci, K, K]`.
    pub weight: Param,
    /// Optional bias `[Co]`.
    pub bias: Option<Param>,
    /// Quantization-aware-training config.
    pub qat: Option<QatCfg>,
    /// ODQ-in-the-loop emulation config (threshold retraining).
    pub odq_emu: Option<OdqEmuCfg>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cache: Option<(Tensor, Tensor, ConvGeom)>,
}

impl Conv2d {
    /// New conv layer with Kaiming-initialized weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        with_bias: bool,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Self {
            name: name.into(),
            weight: Param::kaiming([out_channels, in_channels, kernel, kernel], fan_in, rng),
            bias: with_bias.then(|| Param::zeros([out_channels])),
            qat: None,
            odq_emu: None,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cache: None,
        }
    }

    /// Enable QAT with the given config (builder style).
    pub fn with_qat(mut self, qat: QatCfg) -> Self {
        self.qat = Some(qat);
        self
    }

    /// Geometry for an input of the given spatial size.
    pub fn geom_for(&self, in_h: usize, in_w: usize) -> ConvGeom {
        ConvGeom::new(
            self.in_channels,
            self.out_channels,
            in_h,
            in_w,
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Build the executor-facing context for the current input size.
    pub fn ctx(&self, in_h: usize, in_w: usize) -> ConvCtx<'_> {
        ConvCtx {
            name: &self.name,
            geom: self.geom_for(in_h, in_w),
            weights: &self.weight.value,
            bias: self.bias.as_ref().map(|b| b.value.as_slice()),
            qat: self.qat,
        }
    }

    /// Replace insensitive outputs with their ODQ predictor-only values
    /// (training-time emulation of ODQ inference, matching
    /// [`odq_quant::predict::odq_predict`]).
    fn apply_odq_emulation(&self, x: &Tensor, y: &mut Tensor, g: &ConvGeom, thr: f32) {
        let q = self.qat.unwrap_or_else(QatCfg::int4);
        let qx = quantize_activation(x, q.a_bits, q.a_clip);
        let qw = quantize_weights(&self.weight.value, q.w_bits);
        let low_bits = q.a_bits.min(q.w_bits) / 2;
        let xp = split_qtensor(&qx, low_bits);
        let wp = split_qtensor(&qw, low_bits);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, g);

        let spatial = g.out_spatial();
        let n = y.dims()[0];
        let ys = y.as_mut_slice();
        let est = pred.estimate.as_slice();
        for i in 0..n {
            for co in 0..g.out_channels {
                let b = self.bias.as_ref().map_or(0.0, |bp| bp.value.as_slice()[co]);
                let base = (i * g.out_channels + co) * spatial;
                for s in 0..spatial {
                    let pv = est[base + s];
                    if pv.abs() < thr {
                        ys[base + s] = pv + b;
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor {
        let ctx = self.ctx(x.dims()[2], x.dims()[3]);
        exec.conv(&ctx, x)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let ctx = self.ctx(x.dims()[2], x.dims()[3]);
        let g = ctx.geom;
        let (x_eff, w_eff) = apply_qat(&ctx, x);
        let mut y = conv2d(&x_eff, &w_eff, ctx.bias, &g);
        // Training caches owned copies for the backward pass; the Cow only
        // saves the clone on the no-QAT *inference* path.
        let cache = (x_eff.into_owned(), w_eff.into_owned(), g);
        if let Some(emu) = self.odq_emu {
            self.apply_odq_emulation(x, &mut y, &g, emu.threshold);
        }
        self.cache = Some(cache);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x_eff, w_eff, g) = self.cache.take().expect("Conv2d backward without forward_train");
        let grads = conv2d_backward(&x_eff, &w_eff, dy, &g);
        self.weight.grad.add_assign(&grads.dw);
        if let Some(b) = &mut self.bias {
            for (g0, &d) in b.grad.as_mut_slice().iter_mut().zip(&grads.db) {
                *g0 += d;
            }
        }
        grads.dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        f(self);
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;
    use crate::param::init_rng;

    fn input(seed: usize, n: usize, c: usize, h: usize, w: usize) -> Tensor {
        let data: Vec<f32> =
            (0..n * c * h * w).map(|i| (((i * 131 + seed) % 100) as f32) / 100.0).collect();
        Tensor::from_vec([n, c, h, w], data)
    }

    #[test]
    fn train_and_eval_agree_without_qat() {
        let mut rng = init_rng(3);
        let mut conv = Conv2d::new("C1", 2, 3, 3, 1, 1, true, &mut rng);
        let x = input(0, 1, 2, 5, 5);
        let yt = conv.forward_train(&x);
        let ye = conv.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(yt.as_slice(), ye.as_slice());
        assert_eq!(yt.dims(), &[1, 3, 5, 5]);
    }

    #[test]
    fn train_and_eval_agree_with_qat() {
        let mut rng = init_rng(4);
        let mut conv = Conv2d::new("C1", 2, 3, 3, 1, 1, false, &mut rng).with_qat(QatCfg::int4());
        let x = input(1, 1, 2, 4, 4);
        let yt = conv.forward_train(&x);
        let ye = conv.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(yt.as_slice(), ye.as_slice());
    }

    #[test]
    fn qat_changes_output() {
        let mut rng = init_rng(5);
        let mut plain = Conv2d::new("C1", 2, 3, 3, 1, 1, false, &mut rng);
        let mut quant = Conv2d::new("C1", 2, 3, 3, 1, 1, false, &mut init_rng(5))
            .with_qat(QatCfg { w_bits: 2, a_bits: 2, a_clip: 1.0 });
        let x = input(2, 1, 2, 4, 4);
        let yp = plain.forward_train(&x);
        let yq = quant.forward_train(&x);
        assert!(yp.max_abs_diff(&yq) > 1e-4, "2-bit QAT must perturb outputs");
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut rng = init_rng(6);
        let mut conv = Conv2d::new("C1", 1, 2, 3, 1, 1, true, &mut rng);
        let x = input(3, 2, 1, 4, 4);
        let y = conv.forward_train(&x);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let dx = conv.backward(&dy);
        assert_eq!(dx.dims(), x.dims());
        assert!(conv.weight.grad.max_abs() > 0.0);
        assert!(conv.bias.as_ref().unwrap().grad.max_abs() > 0.0);
    }

    #[test]
    fn odq_emulation_replaces_insensitive_outputs() {
        let mut rng = init_rng(7);
        let mut conv = Conv2d::new("C1", 2, 4, 3, 1, 1, false, &mut rng).with_qat(QatCfg::int4());
        let x = input(4, 1, 2, 6, 6);

        let y_full = conv.forward_train(&x);
        // A huge threshold marks everything insensitive.
        conv.odq_emu = Some(OdqEmuCfg { threshold: f32::INFINITY });
        let y_emu = conv.forward_train(&x);
        assert!(
            y_full.max_abs_diff(&y_emu) > 1e-5,
            "emulation with infinite threshold must replace all outputs"
        );
        // Threshold zero keeps everything sensitive => identical outputs.
        conv.odq_emu = Some(OdqEmuCfg { threshold: 0.0 });
        let y_same = conv.forward_train(&x);
        assert_eq!(y_full.as_slice(), y_same.as_slice());
    }

    #[test]
    fn visit_params_counts() {
        let mut rng = init_rng(8);
        let mut with_bias = Conv2d::new("C1", 1, 1, 3, 1, 1, true, &mut rng);
        let mut without = Conv2d::new("C2", 1, 1, 3, 1, 1, false, &mut rng);
        let mut n = 0;
        with_bias.visit_params(&mut |_| n += 1);
        assert_eq!(n, 2);
        n = 0;
        without.visit_params(&mut |_| n += 1);
        assert_eq!(n, 1);
    }
}
