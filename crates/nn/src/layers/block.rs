//! Residual blocks (ResNet-20/56 building block).

use odq_tensor::Tensor;
use rand_chacha::ChaCha8Rng;

use crate::executor::ConvExecutor;
use crate::param::Param;

use super::act::ReLU;
use super::bn::BatchNorm2d;
use super::conv::{Conv2d, QatCfg};
use super::Layer;

/// A basic two-conv residual block:
/// `y = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
///
/// The shortcut is identity when shape is preserved, or a strided 1×1
/// conv + BN projection when channels/stride change (the standard
/// CIFAR-ResNet option B).
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: ReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    proj: Option<(Conv2d, BatchNorm2d)>,
    relu_out: ReLU,
}

impl ResidualBlock {
    /// Build a block mapping `in_ch -> out_ch` with the given stride on the
    /// first conv. `names` gives the two (three with projection) conv names
    /// in the paper's `C<k>` numbering; `act_clip` is the ReLU clip bound.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name1: impl Into<String>,
        name2: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        act_clip: Option<f32>,
        qat: Option<QatCfg>,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let name1 = name1.into();
        let mk_relu = || match act_clip {
            Some(c) => ReLU::clipped(c),
            None => ReLU::new(),
        };
        let mut conv1 = Conv2d::new(name1.clone(), in_ch, out_ch, 3, stride, 1, false, rng);
        let mut conv2 = Conv2d::new(name2, out_ch, out_ch, 3, 1, 1, false, rng);
        conv1.qat = qat;
        conv2.qat = qat;
        let proj = if stride != 1 || in_ch != out_ch {
            let mut p = Conv2d::new(format!("{name1}p"), in_ch, out_ch, 1, stride, 0, false, rng);
            p.qat = qat;
            Some((p, BatchNorm2d::new(out_ch)))
        } else {
            None
        };
        Self {
            conv1,
            bn1: BatchNorm2d::new(out_ch),
            relu1: mk_relu(),
            conv2,
            bn2: BatchNorm2d::new(out_ch),
            proj,
            relu_out: mk_relu(),
        }
    }

    /// Set the ODQ training-emulation config on the block's convs.
    pub fn set_odq_emu(&mut self, cfg: Option<super::conv::OdqEmuCfg>) {
        self.conv1.odq_emu = cfg;
        self.conv2.odq_emu = cfg;
        if let Some((p, _)) = &mut self.proj {
            p.odq_emu = cfg;
        }
    }

    /// The block's conv layers (for geometry/statistics walks).
    pub fn convs(&self) -> Vec<&Conv2d> {
        let mut v = vec![&self.conv1, &self.conv2];
        if let Some((p, _)) = &self.proj {
            v.push(p);
        }
        v
    }
}

impl Layer for ResidualBlock {
    fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor {
        let h = self.conv1.forward_eval(x, exec);
        let h = self.bn1.forward_eval(&h, exec);
        let h = self.relu1.forward_eval(&h, exec);
        let h = self.conv2.forward_eval(&h, exec);
        let h = self.bn2.forward_eval(&h, exec);
        let s = match &self.proj {
            Some((pc, pb)) => {
                let p = pc.forward_eval(x, exec);
                pb.forward_eval(&p, exec)
            }
            None => x.clone(),
        };
        self.relu_out.forward_eval(&h.add(&s), exec)
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let h = self.conv1.forward_train(x);
        let h = self.bn1.forward_train(&h);
        let h = self.relu1.forward_train(&h);
        let h = self.conv2.forward_train(&h);
        let h = self.bn2.forward_train(&h);
        let s = match &mut self.proj {
            Some((pc, pb)) => {
                let p = pc.forward_train(x);
                pb.forward_train(&p)
            }
            None => x.clone(),
        };
        self.relu_out.forward_train(&h.add(&s))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d = self.relu_out.backward(dy);
        // Branch gradients: the add distributes d to both paths.
        let dmain = self.bn2.backward(&d);
        let dmain = self.conv2.backward(&dmain);
        let dmain = self.relu1.backward(&dmain);
        let dmain = self.bn1.backward(&dmain);
        let mut dx = self.conv1.backward(&dmain);

        let dskip = match &mut self.proj {
            Some((pc, pb)) => {
                let dp = pb.backward(&d);
                pc.backward(&dp)
            }
            None => d,
        };
        dx.add_assign(&dskip);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((pc, pb)) = &mut self.proj {
            pc.visit_params(f);
            pb.visit_params(f);
        }
    }

    fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        f(&mut self.conv1);
        f(&mut self.conv2);
        if let Some((p, _)) = &mut self.proj {
            f(p);
        }
    }

    fn visit_bns_mut(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.bn1);
        f(&mut self.bn2);
        if let Some((_, b)) = &mut self.proj {
            f(b);
        }
    }

    fn name(&self) -> String {
        format!("resblock[{}+{}]", self.conv1.name, self.conv2.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;
    use crate::param::init_rng;

    fn input(n: usize, c: usize, hw: usize) -> Tensor {
        let data: Vec<f32> =
            (0..n * c * hw * hw).map(|i| ((i * 97 + 13) % 50) as f32 / 50.0).collect();
        Tensor::from_vec([n, c, hw, hw], data)
    }

    #[test]
    fn identity_block_shapes() {
        let mut rng = init_rng(1);
        let mut b = ResidualBlock::new("C2", "C3", 4, 4, 1, None, None, &mut rng);
        let x = input(2, 4, 8);
        let y = b.forward_train(&x);
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        let dx = b.backward(&Tensor::full(y.shape().clone(), 0.1));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn projection_block_downsamples() {
        let mut rng = init_rng(2);
        let mut b = ResidualBlock::new("C8", "C9", 4, 8, 2, None, None, &mut rng);
        let x = input(1, 4, 8);
        let y = b.forward_train(&x);
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
        assert_eq!(b.convs().len(), 3, "projection adds a conv");
        let dx = b.backward(&Tensor::full(y.shape().clone(), 0.1));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn gradients_flow_through_skip_connection() {
        // With zeroed main-path weights, output == relu(skip) and the input
        // gradient must still be nonzero (through the skip).
        let mut rng = init_rng(3);
        let mut b = ResidualBlock::new("C2", "C3", 2, 2, 1, None, None, &mut rng);
        b.conv1.weight.value.as_mut_slice().fill(0.0);
        b.conv2.weight.value.as_mut_slice().fill(0.0);
        let x = input(1, 2, 4);
        let y = b.forward_train(&x);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let dx = b.backward(&dy);
        assert!(dx.max_abs() > 0.0, "skip path must carry gradient");
    }

    #[test]
    fn eval_matches_train_after_bn_warmup() {
        let mut rng = init_rng(4);
        let mut b = ResidualBlock::new("C2", "C3", 2, 2, 1, None, None, &mut rng);
        let x = input(2, 2, 4);
        for _ in 0..60 {
            let _ = b.forward_train(&x);
        }
        let yt = b.forward_train(&x);
        let ye = b.forward_eval(&x, &mut FloatConvExecutor);
        assert!(yt.max_abs_diff(&ye) < 0.05);
    }

    /// Finite-difference check through the whole residual block (conv +
    /// BN + ReLU + skip): validates the chained backward composition, not
    /// just each layer in isolation.
    #[test]
    fn block_input_gradient_matches_finite_difference() {
        let mk = || {
            let mut rng = init_rng(77);
            ResidualBlock::new("C2", "C3", 2, 2, 1, None, None, &mut rng)
        };
        let x = input(1, 2, 4);
        // Mask keeps only strictly-active coordinates (ReLU kinks break FD).
        let mask: Vec<f32> = (0..32).map(|i| ((i * 29 + 3) % 11) as f32 / 11.0 - 0.5).collect();
        let loss = |x: &Tensor| -> f32 {
            let mut b = mk();
            let y = b.forward_train(x);
            y.as_slice().iter().zip(&mask).map(|(a, m)| a * m).sum()
        };
        let mut b = mk();
        let y = b.forward_train(&x);
        let dy = Tensor::from_vec(y.shape().clone(), mask.clone());
        let dx = b.backward(&dy);

        let eps = 1e-2;
        let mut checked = 0;
        for i in (0..x.numel()).step_by(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let an = dx.as_slice()[i];
            // ReLU kinks make a few coordinates non-differentiable; accept
            // agreement on the clear majority.
            if (fd - an).abs() < 0.05 {
                checked += 1;
            }
        }
        assert!(checked >= 5, "only {checked} coordinates matched finite differences");
    }

    #[test]
    fn param_count() {
        let mut rng = init_rng(5);
        let mut b = ResidualBlock::new("C2", "C3", 2, 2, 1, None, None, &mut rng);
        let mut count = 0;
        b.visit_params(&mut |_| count += 1);
        // conv1.w + bn1(gamma,beta) + conv2.w + bn2(gamma,beta) = 6
        assert_eq!(count, 6);
    }
}
