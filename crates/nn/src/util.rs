//! NCHW tensor helpers shared by composite blocks.

use odq_tensor::Tensor;

/// Concatenate NCHW tensors along the channel dimension.
///
/// # Panics
/// Panics if batch or spatial dimensions differ.
pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of nothing");
    let (n, h, w) = (parts[0].dims()[0], parts[0].dims()[2], parts[0].dims()[3]);
    let c_total: usize = parts
        .iter()
        .map(|p| {
            assert_eq!(p.dims()[0], n, "batch mismatch in concat");
            assert_eq!(p.dims()[2], h, "height mismatch in concat");
            assert_eq!(p.dims()[3], w, "width mismatch in concat");
            p.dims()[1]
        })
        .sum();
    let plane = h * w;
    let mut out = Tensor::zeros([n, c_total, h, w]);
    let os = out.as_mut_slice();
    for i in 0..n {
        let mut c_off = 0usize;
        for p in parts {
            let c = p.dims()[1];
            let src = &p.as_slice()[i * c * plane..(i + 1) * c * plane];
            let dst = &mut os[(i * c_total + c_off) * plane..(i * c_total + c_off + c) * plane];
            dst.copy_from_slice(src);
            c_off += c;
        }
    }
    out
}

/// Split an NCHW tensor along the channel dimension into pieces of the
/// given channel counts (inverse of [`concat_channels`]).
///
/// # Panics
/// Panics if the channel counts do not sum to the tensor's channels.
pub fn split_channels(x: &Tensor, channels: &[usize]) -> Vec<Tensor> {
    let (n, c_total, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    assert_eq!(channels.iter().sum::<usize>(), c_total, "split channel mismatch");
    let plane = h * w;
    let xs = x.as_slice();
    let mut out = Vec::with_capacity(channels.len());
    let mut c_off = 0usize;
    for &c in channels {
        let mut t = Tensor::zeros([n, c, h, w]);
        {
            let ts = t.as_mut_slice();
            for i in 0..n {
                let src = &xs[(i * c_total + c_off) * plane..(i * c_total + c_off + c) * plane];
                ts[i * c * plane..(i + 1) * c * plane].copy_from_slice(src);
            }
        }
        out.push(t);
        c_off += c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_then_split_roundtrips() {
        let a = Tensor::from_vec([2, 1, 2, 2], (0..8).map(|i| i as f32).collect::<Vec<_>>());
        let b = Tensor::from_vec([2, 2, 2, 2], (8..24).map(|i| i as f32).collect::<Vec<_>>());
        let cat = concat_channels(&[&a, &b]);
        assert_eq!(cat.dims(), &[2, 3, 2, 2]);
        let parts = split_channels(&cat, &[1, 2]);
        assert_eq!(parts[0].as_slice(), a.as_slice());
        assert_eq!(parts[1].as_slice(), b.as_slice());
    }

    #[test]
    fn concat_layout_is_per_image() {
        // image 0's channels of all parts must precede image 1's.
        let a = Tensor::from_vec([2, 1, 1, 1], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2, 1, 1, 1], vec![10.0, 20.0]);
        let cat = concat_channels(&[&a, &b]);
        assert_eq!(cat.as_slice(), &[1.0, 10.0, 2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "height mismatch")]
    fn concat_rejects_spatial_mismatch() {
        let a = Tensor::<f32>::zeros([1, 1, 2, 2]);
        let b = Tensor::<f32>::zeros([1, 1, 3, 2]);
        concat_channels(&[&a, &b]);
    }
}
