//! Architecture catalog: the evaluation networks' convolution geometries.
//!
//! The accelerator simulator consumes *geometries*, not weights, so this
//! module can describe the full-size networks (ResNet-56, VGG-16,
//! DenseNet-40) exactly as the paper evaluates them, independent of the
//! width-scaled variants we can afford to train.

use odq_tensor::ConvGeom;

/// The DNN models of the paper's evaluation (Sec. 5), plus LeNet-5 which
/// Fig. 1 uses as the illustrating example.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arch {
    /// LeNet-5 (MNIST-scale; Fig. 1's illustrating example).
    LeNet5,
    /// ResNet-20 (CIFAR variant: 3 stages × 3 basic blocks).
    ResNet20,
    /// ResNet-56 (CIFAR variant: 3 stages × 9 basic blocks).
    ResNet56,
    /// VGG-16 (CIFAR variant: 13 conv layers).
    Vgg16,
    /// DenseNet-40 (growth 12, 3 dense blocks of 12 layers).
    DenseNet,
}

impl Arch {
    /// All four evaluation models, in the paper's usual order.
    pub const EVAL_MODELS: [Arch; 4] =
        [Arch::ResNet56, Arch::ResNet20, Arch::Vgg16, Arch::DenseNet];

    /// Short display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::LeNet5 => "LeNet-5",
            Arch::ResNet20 => "ResNet-20",
            Arch::ResNet56 => "ResNet-56",
            Arch::Vgg16 => "VGG-16",
            Arch::DenseNet => "DenseNet",
        }
    }

    /// Named convolution geometries of the full-size network, in execution
    /// order (`C1`, `C2`, ... in the paper's numbering; residual-projection
    /// convs are suffixed `p`).
    ///
    /// `input_hw` is the input spatial size (32 for CIFAR, 28 for MNIST).
    pub fn conv_geometries(&self, input_hw: usize) -> Vec<NamedConv> {
        match self {
            Arch::LeNet5 => lenet5_geoms(input_hw),
            Arch::ResNet20 => resnet_geoms(3, input_hw),
            Arch::ResNet56 => resnet_geoms(9, input_hw),
            Arch::Vgg16 => vgg16_geoms(input_hw),
            Arch::DenseNet => densenet_geoms(input_hw, 12, 12),
        }
    }

    /// Total conv MACs per image for the full-size network.
    pub fn total_macs(&self, input_hw: usize) -> u64 {
        self.conv_geometries(input_hw).iter().map(|c| c.geom.macs()).sum()
    }
}

/// A named convolution layer geometry.
#[derive(Clone, Debug)]
pub struct NamedConv {
    /// Layer name (`"C1"`, `"C2"`, ..., `"C8p"` for projections).
    pub name: String,
    /// The layer's geometry.
    pub geom: ConvGeom,
}

fn lenet5_geoms(hw: usize) -> Vec<NamedConv> {
    // LeNet-5 adapted to `hw`×`hw` single-channel input:
    // C1: 1→6 5x5 pad 2; pool2; C2: 6→16 5x5; pool2.
    let c1 = ConvGeom::new(1, 6, hw, hw, 5, 1, 2);
    let h2 = c1.out_h() / 2;
    let c2 = ConvGeom::new(6, 16, h2, h2, 5, 1, 0);
    vec![NamedConv { name: "C1".into(), geom: c1 }, NamedConv { name: "C2".into(), geom: c2 }]
}

/// CIFAR-style ResNet: conv1 (3→16), then 3 stages of `n` basic blocks with
/// channels 16/32/64; stage transitions stride 2 with a 1×1 projection.
fn resnet_geoms(n: usize, hw: usize) -> Vec<NamedConv> {
    let mut v = Vec::new();
    let mut idx = 1usize;
    let push = |v: &mut Vec<NamedConv>, name: String, g: ConvGeom| {
        v.push(NamedConv { name, geom: g });
    };
    push(&mut v, format!("C{idx}"), ConvGeom::new(3, 16, hw, hw, 3, 1, 1));
    idx += 1;

    let mut in_ch = 16usize;
    let mut size = hw;
    for (stage, &out_ch) in [16usize, 32, 64].iter().enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            let g1 = ConvGeom::new(in_ch, out_ch, size, size, 3, stride, 1);
            let name1 = format!("C{idx}");
            idx += 1;
            let out_size = g1.out_h();
            let g2 = ConvGeom::new(out_ch, out_ch, out_size, out_size, 3, 1, 1);
            let name2 = format!("C{idx}");
            idx += 1;
            push(&mut v, name1.clone(), g1);
            push(&mut v, name2, g2);
            if stride != 1 || in_ch != out_ch {
                let gp = ConvGeom::new(in_ch, out_ch, size, size, 1, stride, 0);
                push(&mut v, format!("{name1}p"), gp);
            }
            in_ch = out_ch;
            size = out_size;
        }
    }
    v
}

/// CIFAR VGG-16: 13 conv layers (64×2, 128×2, 256×3, 512×3, 512×3) with
/// 2×2 max pools between groups.
fn vgg16_geoms(hw: usize) -> Vec<NamedConv> {
    let groups: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut v = Vec::new();
    let mut in_ch = 3usize;
    let mut size = hw;
    let mut idx = 1usize;
    for (out_ch, count) in groups {
        for _ in 0..count {
            v.push(NamedConv {
                name: format!("C{idx}"),
                geom: ConvGeom::new(in_ch, out_ch, size, size, 3, 1, 1),
            });
            idx += 1;
            in_ch = out_ch;
        }
        size /= 2; // max pool
    }
    v
}

/// DenseNet-40-style: initial 3×3 conv to 16 channels, `layers_per_block`
/// dense layers per block (growth `k`), 1×1 transition convs + 2×2 pools
/// between blocks.
fn densenet_geoms(hw: usize, k: usize, layers_per_block: usize) -> Vec<NamedConv> {
    let mut v = Vec::new();
    let mut idx = 1usize;
    let mut size = hw;
    let mut ch = 16usize;
    v.push(NamedConv { name: format!("C{idx}"), geom: ConvGeom::new(3, ch, size, size, 3, 1, 1) });
    idx += 1;
    for block in 0..3 {
        for _ in 0..layers_per_block {
            v.push(NamedConv {
                name: format!("C{idx}"),
                geom: ConvGeom::new(ch, k, size, size, 3, 1, 1),
            });
            idx += 1;
            ch += k;
        }
        if block < 2 {
            // transition: 1x1 conv (no compression) + avg pool 2.
            v.push(NamedConv {
                name: format!("C{idx}"),
                geom: ConvGeom::new(ch, ch, size, size, 1, 1, 0),
            });
            idx += 1;
            size /= 2;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_has_19_convs_plus_projections() {
        let g = Arch::ResNet20.conv_geometries(32);
        let main: Vec<_> = g.iter().filter(|c| !c.name.ends_with('p')).collect();
        let proj: Vec<_> = g.iter().filter(|c| c.name.ends_with('p')).collect();
        assert_eq!(main.len(), 19, "1 stem + 18 block convs");
        assert_eq!(proj.len(), 2, "two downsampling projections");
        // Channel progression ends at 64, spatial at 8.
        let last = &main.last().unwrap().geom;
        assert_eq!(last.out_channels, 64);
        assert_eq!(last.out_h(), 8);
    }

    #[test]
    fn resnet56_has_55_convs_plus_projections() {
        let g = Arch::ResNet56.conv_geometries(32);
        let main = g.iter().filter(|c| !c.name.ends_with('p')).count();
        assert_eq!(main, 55, "1 stem + 54 block convs");
    }

    #[test]
    fn vgg16_has_13_convs_and_known_macs() {
        let g = Arch::Vgg16.conv_geometries(32);
        assert_eq!(g.len(), 13);
        // First layer: 3->64 at 32x32: 64*3*9*1024 MACs.
        assert_eq!(g[0].geom.macs(), 64 * 27 * 1024);
        // Spatial halves after each group.
        assert_eq!(g[12].geom.in_h, 2);
    }

    #[test]
    fn densenet_channel_growth() {
        let g = Arch::DenseNet.conv_geometries(32);
        // 1 stem + 36 dense + 2 transitions = 39 convs.
        assert_eq!(g.len(), 39);
        // Last dense layer input channels: 160(after t1)... block3 input is
        // 304; last layer of block3 sees 304 + 11*12 = 436 input channels.
        let last = &g.last().unwrap().geom;
        assert_eq!(last.in_channels, 436);
        assert_eq!(last.out_channels, 12);
    }

    #[test]
    fn macs_ordering_matches_model_size() {
        let r20 = Arch::ResNet20.total_macs(32);
        let r56 = Arch::ResNet56.total_macs(32);
        let vgg = Arch::Vgg16.total_macs(32);
        assert!(r56 > 2 * r20, "ResNet-56 ~2.8x ResNet-20");
        assert!(vgg > r56, "VGG-16 is the heaviest CIFAR model");
        // ResNet-20 is ~40.5M MACs on 32x32 inputs (well-known figure).
        assert!((35_000_000..50_000_000).contains(&r20), "got {r20}");
    }

    #[test]
    fn lenet_geometries() {
        let g = Arch::LeNet5.conv_geometries(28);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].geom.out_h(), 28);
        assert_eq!(g[1].geom.in_h, 14);
        assert_eq!(g[1].geom.out_h(), 10);
    }

    #[test]
    fn eval_models_list() {
        assert_eq!(Arch::EVAL_MODELS.len(), 4);
        assert_eq!(Arch::ResNet20.name(), "ResNet-20");
    }
}
