//! Trainable model builders for the evaluation networks.
//!
//! Accuracy experiments run on *width/depth-scaled* variants of the paper's
//! models (see DESIGN.md substitution 2): `ModelCfg::width_div` divides all
//! channel counts and `depth_div` divides block counts, preserving each
//! architecture's topology (residual/dense connectivity, stage structure)
//! at a size trainable from scratch on one CPU.

use odq_tensor::Tensor;
use rand_chacha::ChaCha8Rng;

use crate::arch::Arch;
use crate::executor::ConvExecutor;
use crate::layers::{
    BatchNorm2d, Conv2d, DenseBlock, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, OdqEmuCfg,
    QatCfg, ReLU, ResidualBlock, Sequential, Transition,
};
use crate::param::{init_rng, Param};

/// Configuration for building a trainable model.
#[derive(Clone, Copy, Debug)]
pub struct ModelCfg {
    /// Which architecture to build.
    pub arch: Arch,
    /// Input spatial size (square).
    pub input_hw: usize,
    /// Input channels (3 for CIFAR-like, 1 for MNIST-like).
    pub in_channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Divide all channel counts by this (1 = full width).
    pub width_div: usize,
    /// Divide per-stage block counts / dense layers by this (1 = full depth).
    pub depth_div: usize,
    /// ReLU clip bound (Some(1.0) for DoReFa-style bounded activations).
    pub act_clip: Option<f32>,
    /// Quantization-aware-training config for all conv layers.
    pub qat: Option<QatCfg>,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl ModelCfg {
    /// A small, fast-to-train configuration used throughout the test suite
    /// and the accuracy experiments: 16×16 inputs, width ÷4, depth ÷3,
    /// clipped activations.
    pub fn small(arch: Arch, num_classes: usize) -> Self {
        Self {
            arch,
            input_hw: 16,
            in_channels: 3,
            num_classes,
            width_div: 4,
            depth_div: 3,
            act_clip: Some(1.0),
            qat: None,
            seed: 0x0d9,
        }
    }
}

/// A buildable, trainable DNN: a layer tree plus metadata.
pub struct Model {
    /// Display name.
    pub name: String,
    /// The architecture this model instantiates.
    pub arch: Arch,
    /// The layer tree.
    pub net: Sequential,
    /// The build configuration.
    pub cfg: ModelCfg,
}

impl Model {
    /// Build a model from a configuration.
    pub fn build(cfg: ModelCfg) -> Self {
        let mut rng = init_rng(cfg.seed);
        let net = match cfg.arch {
            Arch::LeNet5 => build_lenet(&cfg, &mut rng),
            Arch::ResNet20 => build_resnet(&cfg, 3, &mut rng),
            Arch::ResNet56 => build_resnet(&cfg, 9, &mut rng),
            Arch::Vgg16 => build_vgg(&cfg, &mut rng),
            Arch::DenseNet => build_densenet(&cfg, &mut rng),
        };
        Self { name: cfg.arch.name().to_string(), arch: cfg.arch, net, cfg }
    }

    /// Inference forward pass through a pluggable conv executor.
    pub fn forward_eval(&self, x: &Tensor, exec: &mut dyn ConvExecutor) -> Tensor {
        exec.begin_pass();
        self.net.forward_eval(x, exec)
    }

    /// Training forward pass.
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.net.forward_train(x)
    }

    /// Backward pass; returns the input gradient.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.net.backward(dlogits)
    }

    /// Visit all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    /// Zero all parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Install (or clear) a QAT config on every conv layer.
    pub fn set_qat(&mut self, qat: Option<QatCfg>) {
        self.net.visit_convs_mut(&mut |c| c.qat = qat);
        self.cfg.qat = qat;
    }

    /// Install (or clear) ODQ training emulation on every conv layer.
    pub fn set_odq_emu(&mut self, emu: Option<OdqEmuCfg>) {
        self.net.visit_convs_mut(&mut |c| c.odq_emu = emu);
    }

    /// Number of conv layers.
    pub fn conv_count(&mut self) -> usize {
        let mut n = 0;
        self.net.visit_convs_mut(&mut |_| n += 1);
        n
    }

    /// Snapshot all mutable model state: parameter values and batch-norm
    /// running statistics (momentum buffers are transient optimizer state
    /// and are excluded). Use with [`Model::restore_state`] to implement
    /// best-checkpoint training loops.
    pub fn snapshot_state(&mut self) -> Vec<f32> {
        let mut state = Vec::new();
        self.visit_params(&mut |p| state.extend_from_slice(p.value.as_slice()));
        self.net.visit_bns_mut(&mut |bn| {
            state.extend_from_slice(&bn.running_mean);
            state.extend_from_slice(&bn.running_var);
        });
        state
    }

    /// Restore state captured by [`Model::snapshot_state`].
    ///
    /// # Panics
    /// Panics if the snapshot length does not match this model.
    pub fn restore_state(&mut self, state: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p| {
            let n = p.value.numel();
            p.value.as_mut_slice().copy_from_slice(&state[off..off + n]);
            off += n;
        });
        self.net.visit_bns_mut(&mut |bn| {
            let n = bn.running_mean.len();
            bn.running_mean.copy_from_slice(&state[off..off + n]);
            off += n;
            bn.running_var.copy_from_slice(&state[off..off + n]);
            off += n;
        });
        assert_eq!(off, state.len(), "snapshot length mismatch");
    }
}

fn div_ch(c: usize, div: usize) -> usize {
    (c / div.max(1)).max(1)
}

fn relu(cfg: &ModelCfg) -> ReLU {
    match cfg.act_clip {
        Some(c) => ReLU::clipped(c),
        None => ReLU::new(),
    }
}

fn build_lenet(cfg: &ModelCfg, rng: &mut ChaCha8Rng) -> Sequential {
    let mut s = Sequential::new();
    let c1 = div_ch(6, cfg.width_div);
    let c2 = div_ch(16, cfg.width_div);
    let mut conv1 = Conv2d::new("C1", cfg.in_channels, c1, 5, 1, 2, true, rng);
    conv1.qat = cfg.qat;
    s.push(conv1);
    s.push(relu(cfg));
    s.push(MaxPool2d::new(2));
    let mut conv2 = Conv2d::new("C2", c1, c2, 5, 1, 2, true, rng);
    conv2.qat = cfg.qat;
    s.push(conv2);
    s.push(relu(cfg));
    s.push(MaxPool2d::new(2));
    s.push(Flatten::new());
    let feat = c2 * (cfg.input_hw / 4) * (cfg.input_hw / 4);
    s.push(Linear::new(feat, div_ch(84, cfg.width_div), rng));
    s.push(relu(cfg));
    s.push(Linear::new(div_ch(84, cfg.width_div), cfg.num_classes, rng));
    s
}

fn build_resnet(cfg: &ModelCfg, blocks_per_stage: usize, rng: &mut ChaCha8Rng) -> Sequential {
    let n = (blocks_per_stage / cfg.depth_div.max(1)).max(1);
    let chans = [div_ch(16, cfg.width_div), div_ch(32, cfg.width_div), div_ch(64, cfg.width_div)];
    let mut s = Sequential::new();
    let mut conv1 = Conv2d::new("C1", cfg.in_channels, chans[0], 3, 1, 1, false, rng);
    conv1.qat = cfg.qat;
    s.push(conv1);
    s.push(BatchNorm2d::new(chans[0]));
    s.push(relu(cfg));

    let mut idx = 2usize;
    let mut in_ch = chans[0];
    for (stage, &out_ch) in chans.iter().enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            let name1 = format!("C{idx}");
            let name2 = format!("C{}", idx + 1);
            idx += 2;
            s.push(ResidualBlock::new(
                name1,
                name2,
                in_ch,
                out_ch,
                stride,
                cfg.act_clip,
                cfg.qat,
                rng,
            ));
            in_ch = out_ch;
        }
    }
    s.push(GlobalAvgPool::new());
    s.push(Linear::new(in_ch, cfg.num_classes, rng));
    s
}

fn build_vgg(cfg: &ModelCfg, rng: &mut ChaCha8Rng) -> Sequential {
    let groups: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut s = Sequential::new();
    let mut in_ch = cfg.in_channels;
    let mut size = cfg.input_hw;
    let mut idx = 1usize;
    let depth_keep = cfg.depth_div.max(1);
    for (out_ch_full, count) in groups {
        let out_ch = div_ch(out_ch_full, cfg.width_div);
        let count = (count / depth_keep).max(1);
        for _ in 0..count {
            let mut conv = Conv2d::new(format!("C{idx}"), in_ch, out_ch, 3, 1, 1, false, rng);
            conv.qat = cfg.qat;
            s.push(conv);
            s.push(BatchNorm2d::new(out_ch));
            s.push(relu(cfg));
            idx += 1;
            in_ch = out_ch;
        }
        // Pool only while the spatial size stays divisible (small scaled
        // inputs run out of halvings before the five VGG stages do).
        if size >= 2 && size.is_multiple_of(2) {
            s.push(MaxPool2d::new(2));
            size /= 2;
        }
    }
    s.push(GlobalAvgPool::new());
    s.push(Linear::new(in_ch, cfg.num_classes, rng));
    s
}

fn build_densenet(cfg: &ModelCfg, rng: &mut ChaCha8Rng) -> Sequential {
    let growth = div_ch(12, cfg.width_div);
    let layers_per_block = (12 / cfg.depth_div.max(1)).max(1);
    let init_ch = div_ch(16, cfg.width_div);
    let mut s = Sequential::new();
    let mut conv1 = Conv2d::new("C1", cfg.in_channels, init_ch, 3, 1, 1, false, rng);
    conv1.qat = cfg.qat;
    s.push(conv1);

    let mut ch = init_ch;
    let mut idx = 2usize;
    for block in 0..3 {
        let db = DenseBlock::new(idx, ch, growth, layers_per_block, cfg.act_clip, cfg.qat, rng);
        idx += layers_per_block;
        ch = db.out_channels(ch);
        s.push(db);
        if block < 2 {
            s.push(Transition::new(format!("C{idx}"), ch, ch, cfg.act_clip, cfg.qat, rng));
            idx += 1;
        }
    }
    s.push(BatchNorm2d::new(ch));
    s.push(relu(cfg));
    s.push(GlobalAvgPool::new());
    s.push(Linear::new(ch, cfg.num_classes, rng));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;

    fn x(n: usize, c: usize, hw: usize) -> Tensor {
        let data: Vec<f32> =
            (0..n * c * hw * hw).map(|i| ((i * 83 + 3) % 64) as f32 / 64.0).collect();
        Tensor::from_vec([n, c, hw, hw], data)
    }

    #[test]
    fn all_archs_build_and_forward() {
        for arch in [Arch::LeNet5, Arch::ResNet20, Arch::ResNet56, Arch::Vgg16, Arch::DenseNet] {
            let mut cfg = ModelCfg::small(arch, 10);
            if arch == Arch::LeNet5 {
                cfg.in_channels = 1;
            }
            let mut m = Model::build(cfg);
            let input = x(2, cfg.in_channels, cfg.input_hw);
            let yt = m.forward_train(&input);
            assert_eq!(yt.dims(), &[2, 10], "{arch:?} train output shape");
            let ye = m.forward_eval(&input, &mut FloatConvExecutor);
            assert_eq!(ye.dims(), &[2, 10], "{arch:?} eval output shape");
            assert!(yt.as_slice().iter().all(|v| v.is_finite()), "{arch:?} finite");
            assert!(m.param_count() > 0);
            assert!(m.conv_count() > 0);
        }
    }

    #[test]
    fn backward_runs_for_all_archs() {
        for arch in [Arch::ResNet20, Arch::Vgg16, Arch::DenseNet] {
            let cfg = ModelCfg::small(arch, 10);
            let mut m = Model::build(cfg);
            let input = x(2, 3, cfg.input_hw);
            let y = m.forward_train(&input);
            let dy = Tensor::full(y.shape().clone(), 0.1);
            let dx = m.backward(&dy);
            assert_eq!(dx.dims(), input.dims(), "{arch:?}");
            // Some parameter saw gradient.
            let mut any = false;
            m.visit_params(&mut |p| any |= p.grad.max_abs() > 0.0);
            assert!(any, "{arch:?}: no gradients accumulated");
        }
    }

    #[test]
    fn resnet20_small_conv_count() {
        let mut m = Model::build(ModelCfg::small(Arch::ResNet20, 10));
        // depth_div=3 => 1 block per stage => 1 stem + 3*2 block convs
        // + 2 projections = 9 convs.
        assert_eq!(m.conv_count(), 9);
    }

    #[test]
    fn set_qat_reaches_every_conv() {
        let mut m = Model::build(ModelCfg::small(Arch::DenseNet, 10));
        m.set_qat(Some(QatCfg::int4()));
        let mut all = true;
        m.net.visit_convs_mut(&mut |c| all &= c.qat.is_some());
        assert!(all);
        m.set_qat(None);
        let mut none = true;
        m.net.visit_convs_mut(&mut |c| none &= c.qat.is_none());
        assert!(none);
    }

    #[test]
    fn deterministic_build() {
        let a = Model::build(ModelCfg::small(Arch::ResNet20, 10));
        let b = Model::build(ModelCfg::small(Arch::ResNet20, 10));
        let input = x(1, 3, 16);
        let ya = a.forward_eval(&input, &mut FloatConvExecutor);
        let yb = b.forward_eval(&input, &mut FloatConvExecutor);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }
}
