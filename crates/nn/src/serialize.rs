//! Model checkpoint serialization.
//!
//! A deliberately simple, dependency-free binary format ("ODQW"):
//!
//! ```text
//! magic  b"ODQW"          4 bytes
//! version u32 LE          4 bytes
//! param_count u32 LE      4 bytes
//! bn_count u32 LE         4 bytes
//! for each param:  len u32 LE, then len f32 LE values
//! for each bn:     channels u32 LE, running_mean, running_var (f32 LE each)
//! ```
//!
//! Parameters and BN statistics are stored in the deterministic visitor
//! order, so a checkpoint is valid for exactly the model configuration it
//! was saved from — [`load_model`] verifies every length.

use std::io::{self, Read, Write};

use std::path::Path;

use odq_tensor::Tensor;

use crate::layers::QatCfg;
use crate::models::{Model, ModelCfg};
use crate::policy::PrecisionPolicy;
use crate::Arch;
use crate::Layer as _;

const MAGIC: &[u8; 4] = b"ODQW";
const VERSION: u32 = 1;

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an ODQW file or unsupported version.
    Format(String),
    /// Checkpoint does not match the model's architecture.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/model mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

pub(crate) fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32s(w: &mut impl Write, vs: &[f32]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(vs.len() * 4);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f32s(r: &mut impl Read, n: usize) -> io::Result<Vec<f32>> {
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    Ok(buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Serialize a model's parameters and BN statistics to a writer.
pub fn save_model_to(model: &mut Model, w: &mut impl Write) -> io::Result<()> {
    // First pass: counts.
    let mut n_params = 0u32;
    model.visit_params(&mut |_| n_params += 1);
    let mut n_bns = 0u32;
    model.net.visit_bns_mut(&mut |_| n_bns += 1);

    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, n_params)?;
    write_u32(w, n_bns)?;

    let mut err: Option<io::Error> = None;
    model.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        if let Err(e) =
            write_u32(w, p.value.numel() as u32).and_then(|_| write_f32s(w, p.value.as_slice()))
        {
            err = Some(e);
        }
    });
    model.net.visit_bns_mut(&mut |bn| {
        if err.is_some() {
            return;
        }
        if let Err(e) = write_u32(w, bn.running_mean.len() as u32)
            .and_then(|_| write_f32s(w, &bn.running_mean))
            .and_then(|_| write_f32s(w, &bn.running_var))
        {
            err = Some(e);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Save a model checkpoint to a file.
pub fn save_model(model: &mut Model, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_model_to(model, &mut f)?;
    // Flush explicitly: BufWriter's Drop swallows flush errors, which would
    // turn a short write into a silently corrupt checkpoint.
    f.flush()
}

/// Load a checkpoint into an already-built model of the same configuration.
///
/// On error the model may be left **partially updated** (values stream in
/// as they are read); callers that need atomicity should snapshot with
/// [`Model::snapshot_state`] first and restore on failure.
pub fn load_model_from(model: &mut Model, r: &mut impl Read) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!("unsupported version {version}")));
    }
    let n_params = read_u32(r)?;
    let n_bns = read_u32(r)?;

    let mut want_params = 0u32;
    model.visit_params(&mut |_| want_params += 1);
    let mut want_bns = 0u32;
    model.net.visit_bns_mut(&mut |_| want_bns += 1);
    if n_params != want_params || n_bns != want_bns {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {n_params} params / {n_bns} bns, model wants {want_params} / {want_bns}"
        )));
    }

    let mut failure: Option<CheckpointError> = None;
    model.visit_params(&mut |p| {
        if failure.is_some() {
            return;
        }
        match read_u32(r) {
            Ok(len) if len as usize == p.value.numel() => match read_f32s(r, len as usize) {
                Ok(vs) => p.value.as_mut_slice().copy_from_slice(&vs),
                Err(e) => failure = Some(e.into()),
            },
            Ok(len) => {
                failure = Some(CheckpointError::Mismatch(format!(
                    "param length {len} != expected {}",
                    p.value.numel()
                )))
            }
            Err(e) => failure = Some(e.into()),
        }
    });
    model.net.visit_bns_mut(&mut |bn| {
        if failure.is_some() {
            return;
        }
        match read_u32(r) {
            Ok(len) if len as usize == bn.running_mean.len() => {
                match read_f32s(r, len as usize)
                    .and_then(|m| read_f32s(r, len as usize).map(|v| (m, v)))
                {
                    Ok((m, v)) => {
                        bn.running_mean.copy_from_slice(&m);
                        bn.running_var.copy_from_slice(&v);
                    }
                    Err(e) => failure = Some(e.into()),
                }
            }
            Ok(len) => {
                failure = Some(CheckpointError::Mismatch(format!(
                    "bn length {len} != expected {}",
                    bn.running_mean.len()
                )))
            }
            Err(e) => failure = Some(e.into()),
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Load a checkpoint file into an already-built model.
pub fn load_model(model: &mut Model, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_model_from(model, &mut f)
}

const TENSORS_MAGIC: &[u8; 4] = b"ODQT";
const TENSORS_VERSION: u32 = 1;

/// Serialize a set of named tensors ("ODQT" format) — the container used
/// by the conformance suite's committed golden fixtures:
///
/// ```text
/// magic  b"ODQT"          4 bytes
/// version u32 LE          4 bytes
/// entry_count u32 LE      4 bytes
/// for each entry: name_len u32 LE, name (UTF-8), ndim u32 LE,
///                 each dim u32 LE, then numel f32 LE values
/// ```
///
/// Bit patterns round-trip exactly (`to_le_bytes`/`from_le_bytes` on the
/// raw f32s), which is what lets fixture verification compare outputs for
/// bit equality rather than approximately.
pub fn save_tensors_to(w: &mut impl Write, entries: &[(&str, &Tensor)]) -> io::Result<()> {
    w.write_all(TENSORS_MAGIC)?;
    write_u32(w, TENSORS_VERSION)?;
    write_u32(w, entries.len() as u32)?;
    for (name, t) in entries {
        write_u32(w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        let dims = t.dims();
        write_u32(w, dims.len() as u32)?;
        for &d in dims {
            write_u32(w, d as u32)?;
        }
        write_f32s(w, t.as_slice())?;
    }
    Ok(())
}

/// [`save_tensors_to`] writing to a file path.
pub fn save_tensors(path: impl AsRef<Path>, entries: &[(&str, &Tensor)]) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_tensors_to(&mut f, entries)
}

/// Deserialize a named-tensor set written by [`save_tensors_to`],
/// preserving entry order.
pub fn load_tensors_from(r: &mut impl Read) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != TENSORS_MAGIC {
        return Err(CheckpointError::Format("bad magic (not an ODQT tensor file)".into()));
    }
    let version = read_u32(r)?;
    if version != TENSORS_VERSION {
        return Err(CheckpointError::Format(format!("unsupported ODQT version {version}")));
    }
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Format(format!("entry name too long ({name_len})")));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Format("entry name is not UTF-8".into()))?;
        let ndim = read_u32(r)? as usize;
        if ndim == 0 || ndim > 8 {
            return Err(CheckpointError::Format(format!("bad rank {ndim} for entry {name}")));
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_u32(r)? as usize);
        }
        let numel: usize = dims.iter().product();
        let data = read_f32s(r, numel)?;
        out.push((name, Tensor::from_vec(dims, data)));
    }
    Ok(out)
}

/// [`load_tensors_from`] reading from a file path.
pub fn load_tensors(path: impl AsRef<Path>) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_tensors_from(&mut f)
}

const MANIFEST_MAGIC: &[u8; 4] = b"ODQM";
/// Current ODQM manifest version. Version 2 appends an optional
/// [`PrecisionPolicy`] chunk after the metadata section; version-1
/// manifests (no policy) still load.
const MANIFEST_VERSION: u32 = 2;

/// A whole-model checkpoint: enough to rebuild the model from nothing.
///
/// Unlike the positional "ODQW" format (which requires an already-built
/// model of the right configuration), a manifest carries the architecture
/// descriptor itself, so [`load_manifest_from`] can reconstruct the model
/// and then install the weights — the unit a model registry versions,
/// ships, and rolls back.
pub struct ModelManifest {
    /// The rebuilt model with the manifest's weights installed.
    pub model: Model,
    /// Free-form metadata recorded at save time (training notes,
    /// threshold-search results, provenance), in saved order.
    pub meta: Vec<(String, String)>,
    /// The per-layer precision policy published with the model, if any
    /// (manifest version ≥ 2).
    pub policy: Option<PrecisionPolicy>,
}

fn arch_tag(arch: Arch) -> u32 {
    match arch {
        Arch::LeNet5 => 0,
        Arch::ResNet20 => 1,
        Arch::ResNet56 => 2,
        Arch::Vgg16 => 3,
        Arch::DenseNet => 4,
    }
}

fn tag_arch(tag: u32) -> Result<Arch, CheckpointError> {
    Ok(match tag {
        0 => Arch::LeNet5,
        1 => Arch::ResNet20,
        2 => Arch::ResNet56,
        3 => Arch::Vgg16,
        4 => Arch::DenseNet,
        other => return Err(CheckpointError::Format(format!("unknown architecture tag {other}"))),
    })
}

pub(crate) fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

pub(crate) fn read_str(r: &mut impl Read, what: &str) -> Result<String, CheckpointError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(CheckpointError::Format(format!("{what} too long ({len})")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| CheckpointError::Format(format!("{what} is not UTF-8")))
}

/// Serialize a whole-model "ODQM" manifest: architecture descriptor
/// (everything [`Model::build`] needs), free-form metadata, then the
/// model's named weights and BN statistics as an embedded ODQT tensor set.
///
/// ```text
/// magic  b"ODQM"          4 bytes
/// version u32 LE          4 bytes
/// arch_tag, input_hw, in_channels, num_classes,
///     width_div, depth_div   u32 LE each
/// seed u64 LE             8 bytes
/// act_clip: flag u32 LE, then f32 bit pattern u32 LE when 1
/// qat:      flag u32 LE, then w_bits u32, a_bits u32, a_clip bits u32
/// meta_count u32 LE, then (key, value) length-prefixed UTF-8 pairs
/// policy:   flag u32 LE, then a versioned policy chunk when 1 (v2+)
/// embedded ODQT set: params "p0", "p1", ... in visitor order, then
///     "bn0.mean", "bn0.var", ... in visitor order
/// ```
///
/// Weight bit patterns round-trip exactly (the ODQT container stores raw
/// f32 little-endian bytes), so a manifest save/load is bit-reproducible:
/// the reloaded model's forward pass is element-wise identical. The policy
/// chunk stores its f32 fields as raw bit patterns, so an embedded
/// [`PrecisionPolicy`] round-trips bit-exactly too.
pub fn save_manifest_to(
    model: &mut Model,
    meta: &[(String, String)],
    w: &mut impl Write,
) -> io::Result<()> {
    save_manifest_with_policy_to(model, meta, None, w)
}

/// [`save_manifest_to`] with an optional embedded [`PrecisionPolicy`], so
/// a per-layer precision assignment versions, publishes, and rolls back
/// with the weights it was tuned for.
pub fn save_manifest_with_policy_to(
    model: &mut Model,
    meta: &[(String, String)],
    policy: Option<&PrecisionPolicy>,
    w: &mut impl Write,
) -> io::Result<()> {
    let cfg = model.cfg;
    w.write_all(MANIFEST_MAGIC)?;
    write_u32(w, MANIFEST_VERSION)?;
    write_u32(w, arch_tag(cfg.arch))?;
    write_u32(w, cfg.input_hw as u32)?;
    write_u32(w, cfg.in_channels as u32)?;
    write_u32(w, cfg.num_classes as u32)?;
    write_u32(w, cfg.width_div as u32)?;
    write_u32(w, cfg.depth_div as u32)?;
    w.write_all(&cfg.seed.to_le_bytes())?;
    match cfg.act_clip {
        Some(c) => {
            write_u32(w, 1)?;
            write_u32(w, c.to_bits())?;
        }
        None => write_u32(w, 0)?,
    }
    match cfg.qat {
        Some(q) => {
            write_u32(w, 1)?;
            write_u32(w, q.w_bits as u32)?;
            write_u32(w, q.a_bits as u32)?;
            write_u32(w, q.a_clip.to_bits())?;
        }
        None => write_u32(w, 0)?,
    }
    write_u32(w, meta.len() as u32)?;
    for (k, v) in meta {
        write_str(w, k)?;
        write_str(w, v)?;
    }
    match policy {
        Some(p) => {
            write_u32(w, 1)?;
            p.write_to(w)?;
        }
        None => write_u32(w, 0)?,
    }

    // Gather the named state, then write it as one ODQT set.
    let mut names: Vec<String> = Vec::new();
    let mut tensors: Vec<Tensor> = Vec::new();
    let mut i = 0usize;
    model.visit_params(&mut |p| {
        names.push(format!("p{i}"));
        tensors.push(p.value.clone());
        i += 1;
    });
    let mut j = 0usize;
    model.net.visit_bns_mut(&mut |bn| {
        names.push(format!("bn{j}.mean"));
        tensors.push(Tensor::from_vec(vec![bn.running_mean.len()], bn.running_mean.clone()));
        names.push(format!("bn{j}.var"));
        tensors.push(Tensor::from_vec(vec![bn.running_var.len()], bn.running_var.clone()));
        j += 1;
    });
    let entries: Vec<(&str, &Tensor)> =
        names.iter().map(String::as_str).zip(tensors.iter()).collect();
    save_tensors_to(w, &entries)
}

/// Save a whole-model manifest to a file.
pub fn save_manifest(
    model: &mut Model,
    meta: &[(String, String)],
    path: impl AsRef<Path>,
) -> io::Result<()> {
    save_manifest_with_policy(model, meta, None, path)
}

/// Save a whole-model manifest with an embedded policy to a file.
pub fn save_manifest_with_policy(
    model: &mut Model,
    meta: &[(String, String)],
    policy: Option<&PrecisionPolicy>,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_manifest_with_policy_to(model, meta, policy, &mut f)?;
    f.flush()
}

/// Rebuild a model from an "ODQM" manifest written by
/// [`save_manifest_to`]: construct the architecture from the descriptor,
/// then install every named tensor, verifying names and shapes.
pub fn load_manifest_from(r: &mut impl Read) -> Result<ModelManifest, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MANIFEST_MAGIC {
        return Err(CheckpointError::Format("bad magic (not an ODQM manifest)".into()));
    }
    let version = read_u32(r)?;
    if version == 0 || version > MANIFEST_VERSION {
        return Err(CheckpointError::Format(format!("unsupported ODQM version {version}")));
    }
    let arch = tag_arch(read_u32(r)?)?;
    let input_hw = read_u32(r)? as usize;
    let in_channels = read_u32(r)? as usize;
    let num_classes = read_u32(r)? as usize;
    let width_div = read_u32(r)? as usize;
    let depth_div = read_u32(r)? as usize;
    let mut seed_bytes = [0u8; 8];
    r.read_exact(&mut seed_bytes)?;
    let seed = u64::from_le_bytes(seed_bytes);
    let act_clip = match read_u32(r)? {
        0 => None,
        1 => Some(f32::from_bits(read_u32(r)?)),
        other => return Err(CheckpointError::Format(format!("bad act_clip flag {other}"))),
    };
    let qat = match read_u32(r)? {
        0 => None,
        1 => {
            let w_bits = read_u32(r)? as u8;
            let a_bits = read_u32(r)? as u8;
            let a_clip = f32::from_bits(read_u32(r)?);
            Some(QatCfg { w_bits, a_bits, a_clip })
        }
        other => return Err(CheckpointError::Format(format!("bad qat flag {other}"))),
    };
    let meta_count = read_u32(r)? as usize;
    if meta_count > 1 << 16 {
        return Err(CheckpointError::Format(format!("implausible meta count {meta_count}")));
    }
    let mut meta = Vec::with_capacity(meta_count);
    for _ in 0..meta_count {
        let k = read_str(r, "meta key")?;
        let v = read_str(r, "meta value")?;
        meta.push((k, v));
    }
    let policy = if version >= 2 {
        match read_u32(r)? {
            0 => None,
            1 => Some(PrecisionPolicy::read_from(r)?),
            other => return Err(CheckpointError::Format(format!("bad policy flag {other}"))),
        }
    } else {
        None
    };

    let cfg = ModelCfg {
        arch,
        input_hw,
        in_channels,
        num_classes,
        width_div,
        depth_div,
        act_clip,
        qat,
        seed,
    };
    let mut model = Model::build(cfg);
    let tensors = load_tensors_from(r)?;
    let mut cursor = tensors.into_iter();
    let mut failure: Option<CheckpointError> = None;
    let mut next = |want_name: &str, want_len: usize| -> Option<Tensor> {
        match cursor.next() {
            Some((name, t)) if name == want_name && t.numel() == want_len => Some(t),
            Some((name, t)) => {
                failure.get_or_insert(CheckpointError::Mismatch(format!(
                    "expected entry {want_name} ({want_len} values), found {name} ({})",
                    t.numel()
                )));
                None
            }
            None => {
                failure.get_or_insert(CheckpointError::Mismatch(format!(
                    "manifest ends before entry {want_name}"
                )));
                None
            }
        }
    };
    let mut i = 0usize;
    model.visit_params(&mut |p| {
        if let Some(t) = next(&format!("p{i}"), p.value.numel()) {
            p.value.as_mut_slice().copy_from_slice(t.as_slice());
        }
        i += 1;
    });
    let mut j = 0usize;
    model.net.visit_bns_mut(&mut |bn| {
        if let Some(t) = next(&format!("bn{j}.mean"), bn.running_mean.len()) {
            bn.running_mean.copy_from_slice(t.as_slice());
        }
        if let Some(t) = next(&format!("bn{j}.var"), bn.running_var.len()) {
            bn.running_var.copy_from_slice(t.as_slice());
        }
        j += 1;
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if let Some((name, _)) = cursor.next() {
        return Err(CheckpointError::Mismatch(format!("unexpected trailing entry {name}")));
    }
    Ok(ModelManifest { model, meta, policy })
}

/// Load a whole-model manifest from a file.
pub fn load_manifest(path: impl AsRef<Path>) -> Result<ModelManifest, CheckpointError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_manifest_from(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FloatConvExecutor;
    use crate::models::ModelCfg;
    use crate::Arch;
    use odq_tensor::Tensor;

    fn model() -> Model {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        Model::build(cfg)
    }

    fn input() -> Tensor {
        Tensor::from_vec([1, 3, 8, 8], (0..192).map(|i| (i % 50) as f32 / 50.0).collect::<Vec<_>>())
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut a = model();
        // Perturb weights so we're not saving the deterministic init.
        a.visit_params(&mut |p| {
            for (i, v) in p.value.as_mut_slice().iter_mut().enumerate() {
                *v += (i % 7) as f32 * 1e-3;
            }
        });
        let mut buf = Vec::new();
        save_model_to(&mut a, &mut buf).unwrap();

        let mut b = model();
        load_model_from(&mut b, &mut io::Cursor::new(&buf)).unwrap();

        let x = input();
        let ya = a.forward_eval(&x, &mut FloatConvExecutor);
        let yb = b.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model();
        let err = load_model_from(&mut m, &mut io::Cursor::new(b"NOPE....".to_vec()));
        assert!(matches!(err, Err(CheckpointError::Format(_))));
    }

    #[test]
    fn tensor_set_roundtrips_bit_exactly() {
        let a = Tensor::from_vec([2, 3], vec![0.1, -0.2, 3.5e-9, f32::MIN_POSITIVE, -0.0, 1.0]);
        let b = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]);
        let mut buf = Vec::new();
        save_tensors_to(&mut buf, &[("a", &a), ("b", &b)]).unwrap();
        let loaded = load_tensors_from(&mut io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "a");
        assert_eq!(loaded[0].1.dims(), &[2, 3]);
        let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&loaded[0].1), bits(&a));
        assert_eq!(bits(&loaded[1].1), bits(&b));
    }

    #[test]
    fn tensor_set_rejects_bad_magic() {
        let err = load_tensors_from(&mut io::Cursor::new(b"NOPE....".to_vec()));
        assert!(matches!(err, Err(CheckpointError::Format(_))));
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = model();
        let mut buf = Vec::new();
        save_model_to(&mut a, &mut buf).unwrap();

        let mut cfg = ModelCfg::small(Arch::Vgg16, 4);
        cfg.input_hw = 8;
        let mut other = Model::build(cfg);
        let err = load_model_from(&mut other, &mut io::Cursor::new(&buf));
        assert!(matches!(err, Err(CheckpointError::Mismatch(_))), "{err:?}");
    }

    #[test]
    fn rejects_truncated_file() {
        let mut a = model();
        let mut buf = Vec::new();
        save_model_to(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = model();
        let err = load_model_from(&mut b, &mut io::Cursor::new(&buf));
        assert!(matches!(err, Err(CheckpointError::Io(_))));
    }

    #[test]
    fn manifest_roundtrip_is_bit_exact_and_needs_no_prebuilt_model() {
        let mut a = model();
        a.visit_params(&mut |p| {
            for (i, v) in p.value.as_mut_slice().iter_mut().enumerate() {
                *v += ((i % 13) as f32 - 6.0) * 1e-3;
            }
        });
        a.net.visit_bns_mut(&mut |bn| {
            for (i, m) in bn.running_mean.iter_mut().enumerate() {
                *m = (i as f32) * 0.01 - 0.05;
            }
        });
        let meta =
            vec![("trained_epochs".to_string(), "12".to_string()), ("note".into(), "ε≤1".into())];
        let mut buf = Vec::new();
        save_manifest_to(&mut a, &meta, &mut buf).unwrap();

        // No model is built beforehand: the manifest carries the descriptor.
        let loaded = load_manifest_from(&mut io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.meta, meta);
        let mut b = loaded.model;
        assert_eq!(b.cfg.arch, a.cfg.arch);
        assert_eq!(b.cfg.input_hw, a.cfg.input_hw);

        let x = input();
        let ya = a.forward_eval(&x, &mut FloatConvExecutor);
        let yb = b.forward_eval(&x, &mut FloatConvExecutor);
        let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ya), bits(&yb), "manifest roundtrip must be bit-exact");
        // BN statistics survive too.
        let mut means_a = Vec::new();
        a.net.visit_bns_mut(&mut |bn| means_a.push(bn.running_mean.clone()));
        let mut means_b = Vec::new();
        b.net.visit_bns_mut(&mut |bn| means_b.push(bn.running_mean.clone()));
        assert_eq!(means_a, means_b);
    }

    #[test]
    fn manifest_preserves_qat_and_act_clip_descriptor() {
        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        cfg.qat = Some(crate::layers::QatCfg::int4());
        cfg.act_clip = None;
        let mut m = Model::build(cfg);
        let mut buf = Vec::new();
        save_manifest_to(&mut m, &[], &mut buf).unwrap();
        let loaded = load_manifest_from(&mut io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.model.cfg.qat, Some(crate::layers::QatCfg::int4()));
        assert_eq!(loaded.model.cfg.act_clip, None);
        assert_eq!(loaded.model.cfg.seed, cfg.seed);
    }

    #[test]
    fn manifest_embedded_policy_roundtrips_bit_exactly() {
        use crate::policy::{PrecisionPolicy, Route};
        let mut m = model();
        let policy = PrecisionPolicy::uniform(Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 })
            .with("C1", Route::Odq { threshold: 0.3, sparse: false })
            .with(
                "C2",
                Route::Drq { hi_bits: 8, lo_bits: 4, a_clip: 1.0, region: 2, input_threshold: 0.1 },
            )
            .with("C3", Route::Float);
        let mut buf = Vec::new();
        save_manifest_with_policy_to(&mut m, &[], Some(&policy), &mut buf).unwrap();
        let loaded = load_manifest_from(&mut io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.policy.as_ref(), Some(&policy));
        // Saving the reloaded manifest reproduces identical bytes: the
        // policy chunk (and everything else) is canonical.
        let mut again = loaded.model;
        let mut buf2 = Vec::new();
        save_manifest_with_policy_to(&mut again, &[], loaded.policy.as_ref(), &mut buf2).unwrap();
        assert_eq!(buf, buf2, "manifest with embedded policy must round-trip bit-exactly");
    }

    #[test]
    fn manifest_without_policy_loads_as_none() {
        let mut m = model();
        let mut buf = Vec::new();
        save_manifest_to(&mut m, &[], &mut buf).unwrap();
        let loaded = load_manifest_from(&mut io::Cursor::new(&buf)).unwrap();
        assert!(loaded.policy.is_none());
    }

    #[test]
    fn version1_manifest_still_loads() {
        // Hand-write a version-1 manifest (no policy section) and check the
        // loader accepts it — committed v1 fixtures must keep loading.
        let mut m = model();
        let cfg = m.cfg;
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        write_u32(&mut buf, 1).unwrap();
        write_u32(&mut buf, arch_tag(cfg.arch)).unwrap();
        write_u32(&mut buf, cfg.input_hw as u32).unwrap();
        write_u32(&mut buf, cfg.in_channels as u32).unwrap();
        write_u32(&mut buf, cfg.num_classes as u32).unwrap();
        write_u32(&mut buf, cfg.width_div as u32).unwrap();
        write_u32(&mut buf, cfg.depth_div as u32).unwrap();
        buf.extend_from_slice(&cfg.seed.to_le_bytes());
        match cfg.act_clip {
            Some(c) => {
                write_u32(&mut buf, 1).unwrap();
                write_u32(&mut buf, c.to_bits()).unwrap();
            }
            None => write_u32(&mut buf, 0).unwrap(),
        }
        assert!(cfg.qat.is_none(), "test model is not QAT-configured");
        write_u32(&mut buf, 0).unwrap(); // qat flag
        write_u32(&mut buf, 0).unwrap(); // meta count
                                         // No policy flag in v1: the ODQT set follows immediately.
        let mut names: Vec<String> = Vec::new();
        let mut tensors: Vec<Tensor> = Vec::new();
        let mut i = 0usize;
        m.visit_params(&mut |p| {
            names.push(format!("p{i}"));
            tensors.push(p.value.clone());
            i += 1;
        });
        let mut j = 0usize;
        m.net.visit_bns_mut(&mut |bn| {
            names.push(format!("bn{j}.mean"));
            tensors.push(Tensor::from_vec(vec![bn.running_mean.len()], bn.running_mean.clone()));
            names.push(format!("bn{j}.var"));
            tensors.push(Tensor::from_vec(vec![bn.running_var.len()], bn.running_var.clone()));
            j += 1;
        });
        let entries: Vec<(&str, &Tensor)> =
            names.iter().map(String::as_str).zip(tensors.iter()).collect();
        save_tensors_to(&mut buf, &entries).unwrap();

        let loaded = load_manifest_from(&mut io::Cursor::new(&buf)).unwrap();
        assert!(loaded.policy.is_none());
        let x = input();
        let b = loaded.model;
        let ya = m.forward_eval(&x, &mut FloatConvExecutor);
        let yb = b.forward_eval(&x, &mut FloatConvExecutor);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn manifest_rejects_bad_magic_and_truncation() {
        let err = load_manifest_from(&mut io::Cursor::new(b"NOPE....".to_vec()));
        assert!(matches!(err, Err(CheckpointError::Format(_))));
        let mut m = model();
        let mut buf = Vec::new();
        save_manifest_to(&mut m, &[], &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        let err = load_manifest_from(&mut io::Cursor::new(&buf));
        assert!(err.is_err(), "truncated manifest must not load");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("odq-ckpt-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("m.odqw");
        let mut a = model();
        save_model(&mut a, &path).unwrap();
        let mut b = model();
        load_model(&mut b, &path).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
