//! Pluggable convolution execution for inference.
//!
//! The quantization engines (static DoReFa baselines in this crate's
//! `train`/eval path, DRQ in `odq-drq`, ODQ in `odq-core`) all differ *only*
//! in how they execute convolution layers. [`ConvExecutor`] is that seam:
//! model inference hands every conv layer's raw float weights and input to
//! the executor and uses whatever output it returns.

use std::borrow::Cow;
use std::sync::Arc;
use std::time::{Duration, Instant};

use odq_quant::plan::{PlanCache, PlanSpec};
use odq_tensor::{ConvGeom, Tensor};

use crate::layers::conv::QatCfg;

/// Everything an executor can know about a conv layer at call time.
pub struct ConvCtx<'a> {
    /// Layer name, e.g. `"C7"` (paper numbering: first conv is `C1`).
    pub name: &'a str,
    /// Convolution geometry for the current input size.
    pub geom: ConvGeom,
    /// Raw (float, possibly QAT-trained) weights `[Co, Ci, K, K]`.
    pub weights: &'a Tensor,
    /// Optional per-output-channel bias.
    pub bias: Option<&'a [f32]>,
    /// The layer's quantization-aware-training configuration, if any.
    /// Engines may honor it (the float executor fake-quantizes to match
    /// training) or override it with their own scheme.
    pub qat: Option<QatCfg>,
}

/// Executes convolution layers during inference.
pub trait ConvExecutor {
    /// Called once at the start of each full forward pass, before the first
    /// conv layer. Engines reset per-pass layer counters here.
    fn begin_pass(&mut self) {}

    /// Execute one convolution; must return a `[N, Co, OH, OW]` tensor.
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor;
}

/// The reference executor: float convolution, honoring the layer's QAT
/// fake-quantization so that evaluation matches the training-time forward.
#[derive(Default, Clone, Copy)]
pub struct FloatConvExecutor;

impl ConvExecutor for FloatConvExecutor {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let (x_eff, w_eff) = apply_qat(ctx, x);
        odq_tensor::conv::conv2d(&x_eff, &w_eff, ctx.bias, &ctx.geom)
    }
}

/// Apply a layer's QAT fake quantization to `(input, weights)` — shared by
/// the float executor and the training forward pass.
///
/// Borrows the originals when the layer has no QAT config, so the common
/// no-QAT inference path allocates nothing.
pub fn apply_qat<'a>(ctx: &ConvCtx<'a>, x: &'a Tensor) -> (Cow<'a, Tensor>, Cow<'a, Tensor>) {
    match ctx.qat {
        Some(q) => (
            Cow::Owned(odq_quant::fake_quantize_activation(x, q.a_bits, q.a_clip)),
            Cow::Owned(odq_quant::fake_quantize_weights(ctx.weights, q.w_bits)),
        ),
        None => (Cow::Borrowed(x), Cow::Borrowed(ctx.weights)),
    }
}

/// A static-quantization executor: quantizes weights and activations to
/// fixed bit widths regardless of the layer's QAT config. This is the
/// "INT16 DoReFa-Net" / "INT8 DoReFa-Net" baseline of the paper's
/// evaluation (Sec. 5.2).
///
/// Weights are quantized once per layer per weight version through a
/// [`PlanCache`] (shareable across executors) instead of on every call.
#[derive(Clone)]
pub struct StaticQuantExecutor {
    /// Weight bit width.
    pub w_bits: u8,
    /// Activation bit width.
    pub a_bits: u8,
    /// Activation clip range (DoReFa clips activations to `[0, clip]`).
    pub a_clip: f32,
    plans: Arc<PlanCache>,
}

impl StaticQuantExecutor {
    /// INT-k static quantization with activation clip 1.0.
    pub fn int(bits: u8) -> Self {
        Self::with_bits(bits, bits, 1.0)
    }

    /// Static quantization with explicit weight/activation widths.
    pub fn with_bits(w_bits: u8, a_bits: u8, a_clip: f32) -> Self {
        Self { w_bits, a_bits, a_clip, plans: Arc::new(PlanCache::new()) }
    }

    /// Executor sharing an existing plan cache.
    pub fn with_plan_cache(w_bits: u8, a_bits: u8, a_clip: f32, plans: Arc<PlanCache>) -> Self {
        Self { w_bits, a_bits, a_clip, plans }
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }
}

impl ConvExecutor for StaticQuantExecutor {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let qx = odq_quant::quantize_activation(x, self.a_bits, self.a_clip);
        // Offset-binary coding up to 15 bits; at 16 bits the symmetric
        // grid's zero-collapse issue is irrelevant (32767 levels) and the
        // signed coding keeps codes within i16. `PlanSpec::static_quant`
        // encodes the same cutover.
        let plan = self.plans.plan_for(ctx.name, ctx.weights, PlanSpec::static_quant(self.w_bits));
        let mut y = odq_quant::qconv::qconv2d_with(&qx, &plan.qw, &ctx.geom, self.plans.pool());
        if let Some(b) = ctx.bias {
            add_bias(&mut y, b, &ctx.geom);
        }
        y
    }
}

/// One observed conv-layer execution, as reported to a [`LayerProbe`].
///
/// Borrowed views into the executing layer's context: probes copy out
/// whatever they aggregate and must not assume the borrows outlive the
/// call.
pub struct LayerObservation<'a> {
    /// Layer name (paper numbering, e.g. `"C3"`).
    pub name: &'a str,
    /// Geometry the layer executed with.
    pub geom: &'a ConvGeom,
    /// Batch size of the input this layer just processed.
    pub batch: usize,
    /// Wall time of this layer's execution (the inner executor's `conv`
    /// call only — probe overhead is excluded by construction).
    pub wall: Duration,
}

/// Observes per-layer execution during inference.
///
/// This is the profiling seam the serving stack threads through every
/// engine: a probe sees each conv layer exactly once per forward pass, in
/// execution order, with its measured wall time. Implementations should be
/// cheap — they run on the inference hot path.
pub trait LayerProbe {
    /// Called when the wrapped executor begins a forward pass, before any
    /// layer is observed.
    fn begin_pass(&mut self) {}

    /// Called after each conv layer executes.
    fn observe(&mut self, obs: &LayerObservation<'_>);
}

/// A probe that records `(layer name, batch, wall)` per pass — the
/// simplest useful [`LayerProbe`], and the one the tests pin behavior
/// with.
#[derive(Default)]
pub struct CollectingProbe {
    /// Observations of the current (or last completed) pass, in execution
    /// order.
    pub layers: Vec<(String, usize, Duration)>,
    /// Forward passes begun.
    pub passes: u64,
}

impl LayerProbe for CollectingProbe {
    fn begin_pass(&mut self) {
        self.layers.clear();
        self.passes += 1;
    }

    fn observe(&mut self, obs: &LayerObservation<'_>) {
        self.layers.push((obs.name.to_string(), obs.batch, obs.wall));
    }
}

/// Wraps any [`ConvExecutor`], timing each layer and reporting it to a
/// [`LayerProbe`]. The wrapper is itself a `ConvExecutor`, so probing
/// composes with every engine behind the seam — float, static INT-k, DRQ,
/// ODQ, or a policy router — without the engine knowing it is observed.
pub struct ProbedExecutor<E, P> {
    /// The executor actually running the layers.
    pub inner: E,
    /// The probe observing them.
    pub probe: P,
}

impl<E, P> ProbedExecutor<E, P> {
    /// Probe `inner` with `probe`.
    pub fn new(inner: E, probe: P) -> Self {
        Self { inner, probe }
    }
}

impl<E: ConvExecutor, P: LayerProbe> ConvExecutor for ProbedExecutor<E, P> {
    fn begin_pass(&mut self) {
        self.probe.begin_pass();
        self.inner.begin_pass();
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let t0 = Instant::now();
        let y = self.inner.conv(ctx, x);
        let obs = LayerObservation {
            name: ctx.name,
            geom: &ctx.geom,
            batch: x.dims()[0],
            wall: t0.elapsed(),
        };
        self.probe.observe(&obs);
        y
    }
}

/// Add a per-output-channel bias to a `[N, Co, OH, OW]` tensor.
pub fn add_bias(y: &mut Tensor, bias: &[f32], g: &ConvGeom) {
    let n = y.dims()[0];
    let spatial = g.out_spatial();
    let ys = y.as_mut_slice();
    for i in 0..n {
        for (co, &b) in bias.iter().enumerate() {
            let base = (i * g.out_channels + co) * spatial;
            for v in &mut ys[base..base + spatial] {
                *v += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(w: &'a Tensor, g: ConvGeom, qat: Option<QatCfg>) -> ConvCtx<'a> {
        ConvCtx { name: "C1", geom: g, weights: w, bias: None, qat }
    }

    #[test]
    fn float_executor_matches_reference_conv() {
        let g = ConvGeom::new(2, 3, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(
            g.input_shape(1),
            (0..32).map(|i| i as f32 / 32.0).collect::<Vec<_>>(),
        );
        let w = Tensor::from_vec(
            g.weight_shape(),
            (0..54).map(|i| (i as f32 - 27.0) / 54.0).collect::<Vec<_>>(),
        );
        let mut e = FloatConvExecutor;
        let y = e.conv(&ctx(&w, g, None), &x);
        let want = odq_tensor::conv::conv2d(&x, &w, None, &g);
        assert_eq!(y.as_slice(), want.as_slice());
    }

    #[test]
    fn static_executor_at_high_bits_approaches_float() {
        let g = ConvGeom::new(2, 2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(
            g.input_shape(1),
            (0..32).map(|i| i as f32 / 31.0).collect::<Vec<_>>(),
        );
        let w = Tensor::from_vec(
            g.weight_shape(),
            (0..36).map(|i| ((i as f32) - 18.0) / 36.0).collect::<Vec<_>>(),
        );
        let want = odq_tensor::conv::conv2d(&x, &w, None, &g);

        let y8 = StaticQuantExecutor::int(8).conv(&ctx(&w, g, None), &x);
        let y2 = StaticQuantExecutor::int(2).conv(&ctx(&w, g, None), &x);
        let e8 = y8.mean_abs_diff(&want);
        let e2 = y2.mean_abs_diff(&want);
        assert!(e8 < e2, "8-bit should be more accurate: {e8} vs {e2}");
        assert!(e8 < 0.05);
    }

    #[test]
    fn probed_executor_is_transparent_and_observes_each_layer() {
        let g = ConvGeom::new(2, 3, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(
            g.input_shape(1),
            (0..32).map(|i| i as f32 / 32.0).collect::<Vec<_>>(),
        );
        let w = Tensor::from_vec(
            g.weight_shape(),
            (0..54).map(|i| (i as f32 - 27.0) / 54.0).collect::<Vec<_>>(),
        );
        let mut probed = ProbedExecutor::new(FloatConvExecutor, CollectingProbe::default());
        probed.begin_pass();
        let y = probed.conv(&ctx(&w, g, None), &x);
        let want = FloatConvExecutor.conv(&ctx(&w, g, None), &x);
        assert_eq!(y.as_slice(), want.as_slice(), "probing must not change the math");
        assert_eq!(probed.probe.passes, 1);
        assert_eq!(probed.probe.layers.len(), 1);
        assert_eq!(probed.probe.layers[0].0, "C1");
        assert_eq!(probed.probe.layers[0].1, 1, "batch size observed");
        // Second pass resets the per-pass observations.
        probed.begin_pass();
        assert_eq!(probed.probe.passes, 2);
        assert!(probed.probe.layers.is_empty());
    }

    #[test]
    fn bias_is_added_per_channel() {
        let g = ConvGeom::new(1, 2, 2, 2, 1, 1, 0);
        let mut y = Tensor::<f32>::zeros(g.output_shape(1));
        add_bias(&mut y, &[1.0, -2.0], &g);
        assert_eq!(&y.as_slice()[..4], &[1.0; 4]);
        assert_eq!(&y.as_slice()[4..], &[-2.0; 4]);
    }
}
