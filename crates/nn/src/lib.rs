//! # odq-nn
//!
//! A from-scratch DNN substrate: layers with manual backpropagation, model
//! builders for the paper's evaluation networks (LeNet-5, ResNet-20,
//! ResNet-56, VGG-16, DenseNet), and an SGD training loop with optional
//! quantization-aware training (DoReFa-style fake quantization with a
//! straight-through estimator).
//!
//! The paper implements its models in PyTorch; this crate replaces that
//! dependency. Two properties drive the design:
//!
//! 1. **Pluggable convolution execution.** Every inference pass routes conv
//!    layers through a [`executor::ConvExecutor`]. The default executor runs
//!    the float reference; the `odq-core` and `odq-drq` crates implement
//!    executors that perform output-directed / input-directed dynamic
//!    quantization and record per-layer statistics, without this crate
//!    knowing anything about them.
//! 2. **Geometry as data.** Model builders expose their convolution
//!    geometries ([`arch`]) so the accelerator simulator can replay the
//!    *full-size* workloads (ResNet-56, VGG-16, ...) even when the trained
//!    models used for accuracy experiments are width-scaled.

pub mod arch;
pub mod executor;
pub mod layers;
pub mod loss;
pub mod models;
pub mod param;
pub mod policy;
pub mod serialize;
pub mod train;
pub mod util;

pub use arch::Arch;
pub use executor::{ConvCtx, ConvExecutor, FloatConvExecutor};
pub use layers::{Layer, Sequential};
pub use models::Model;
pub use param::Param;
pub use policy::{auto_policy, AutoPolicyCfg, PrecisionPolicy, Route};
