//! Trainable parameters and weight initialization.

use odq_tensor::{Shape, Tensor};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A trainable parameter: value, accumulated gradient, and the optimizer's
/// momentum buffer.
///
/// Keeping the momentum buffer inside the parameter lets layers expose all
/// optimizer state through a single visitor ([`crate::Layer::visit_params`])
/// without the optimizer needing to track parameter identity.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
    /// SGD momentum buffer.
    pub momentum: Tensor,
    /// Whether weight decay applies (true for weights, false for
    /// biases/BN parameters, the usual convention).
    pub decay: bool,
}

impl Param {
    /// A parameter initialized to zeros (biases, BN shift).
    pub fn zeros<S: Into<Shape> + Clone>(shape: S) -> Self {
        Self {
            value: Tensor::zeros(shape.clone()),
            grad: Tensor::zeros(shape.clone()),
            momentum: Tensor::zeros(shape),
            decay: false,
        }
    }

    /// A parameter initialized to ones (BN scale).
    pub fn ones<S: Into<Shape> + Clone>(shape: S) -> Self {
        Self {
            value: Tensor::full(shape.clone(), 1.0),
            grad: Tensor::zeros(shape.clone()),
            momentum: Tensor::zeros(shape),
            decay: false,
        }
    }

    /// Kaiming/He-style uniform initialization for a weight tensor with
    /// the given fan-in, from a deterministic seeded RNG.
    pub fn kaiming<S: Into<Shape> + Clone>(shape: S, fan_in: usize, rng: &mut ChaCha8Rng) -> Self {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        let shape2 = shape.clone().into();
        let data: Vec<f32> = (0..shape2.numel()).map(|_| rng.gen_range(-bound..bound)).collect();
        Self {
            value: Tensor::from_vec(shape2, data),
            grad: Tensor::zeros(shape.clone()),
            momentum: Tensor::zeros(shape),
            decay: true,
        }
    }

    /// Zero the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Deterministic RNG for weight initialization.
pub fn init_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Param::zeros([3, 4]);
        assert!(z.value.as_slice().iter().all(|&x| x == 0.0));
        assert!(!z.decay);
        let o = Param::ones([5]);
        assert!(o.value.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn kaiming_is_deterministic_and_bounded() {
        let mut r1 = init_rng(42);
        let mut r2 = init_rng(42);
        let a = Param::kaiming([8, 4], 4, &mut r1);
        let b = Param::kaiming([8, 4], 4, &mut r2);
        assert_eq!(a.value.as_slice(), b.value.as_slice());
        let bound = (6.0f32 / 4.0).sqrt();
        assert!(a.value.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(a.decay);
        // Not all zero (sanity).
        assert!(a.value.max_abs() > 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Param::kaiming([16], 16, &mut init_rng(1));
        let b = Param::kaiming([16], 16, &mut init_rng(2));
        assert_ne!(a.value.as_slice(), b.value.as_slice());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::ones([2]);
        p.grad.as_mut_slice().fill(3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }
}
