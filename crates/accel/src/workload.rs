//! Layer workload descriptions consumed by the simulator.

use odq_tensor::ConvGeom;
use serde::Serialize;

/// One conv layer's workload: geometry plus the dynamic-quantization
/// sensitivity profile that determines how much work each engine performs.
#[derive(Clone, Debug, Serialize)]
pub struct LayerWorkload {
    /// Layer name.
    pub name: String,
    /// Convolution geometry.
    pub geom: ConvGeomSer,
    /// Fraction of output features ODQ predicts sensitive (drives the
    /// executor's workload and the PE-array allocation).
    pub odq_sensitive_fraction: f64,
    /// Fraction of MACs DRQ executes at high precision (input-directed).
    pub drq_hi_fraction: f64,
    /// Per-output-channel sensitive-output counts (averaged over images),
    /// for the executor's cluster-scheduling simulation. When empty, the
    /// simulators fall back to uniform counts derived from
    /// `odq_sensitive_fraction` (see
    /// [`LayerWorkload::effective_channel_counts`]).
    pub channel_counts: Vec<u32>,
}

/// Serializable mirror of [`ConvGeom`] (kept structurally identical).
#[derive(Clone, Copy, Debug, Serialize)]
#[allow(missing_docs)]
pub struct ConvGeomSer {
    pub in_channels: usize,
    pub out_channels: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
}

impl From<ConvGeom> for ConvGeomSer {
    fn from(g: ConvGeom) -> Self {
        Self {
            in_channels: g.in_channels,
            out_channels: g.out_channels,
            in_h: g.in_h,
            in_w: g.in_w,
            kernel: g.kernel,
            stride: g.stride,
            padding: g.padding,
        }
    }
}

impl ConvGeomSer {
    /// Back to the tensor-crate geometry.
    pub fn geom(&self) -> ConvGeom {
        ConvGeom::new(
            self.in_channels,
            self.out_channels,
            self.in_h,
            self.in_w,
            self.kernel,
            self.stride,
            self.padding,
        )
    }
}

impl LayerWorkload {
    /// Workload with a uniform sensitive fraction; per-channel counts are
    /// synthesized with deterministic jitter (channels differ, as in real
    /// masks — Figs. 9/10 show strong per-layer/channel variation).
    pub fn uniform(name: impl Into<String>, geom: ConvGeom, sensitive_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&sensitive_fraction), "fraction out of range");
        let spatial = geom.out_spatial() as f64;
        let co = geom.out_channels;
        let mut counts = Vec::with_capacity(co);
        let mut state = 0x9E3779B9u64;
        let mut total = 0f64;
        for _ in 0..co {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // jitter in [0.5, 1.5) around the mean fraction
            let jitter = 0.5 + (state >> 40) as f64 / (1u64 << 24) as f64;
            let c = (sensitive_fraction * spatial * jitter).round().min(spatial);
            counts.push(c as u32);
            total += c;
        }
        // Renormalize so the aggregate matches the requested fraction.
        let want = sensitive_fraction * spatial * co as f64;
        if total > 0.0 {
            let k = want / total;
            for c in &mut counts {
                *c = ((*c as f64 * k).round() as u32).min(spatial as u32);
            }
        }
        Self {
            name: name.into(),
            geom: geom.into(),
            odq_sensitive_fraction: sensitive_fraction,
            drq_hi_fraction: sensitive_fraction,
            channel_counts: counts,
        }
    }

    /// Workload from measured per-(image, channel) sensitive counts (the
    /// `odq-core` engine's `LayerStats::channel_counts`).
    pub fn from_channel_counts(
        name: impl Into<String>,
        geom: ConvGeom,
        per_image_counts: &[Vec<u32>],
    ) -> Self {
        let co = geom.out_channels;
        let spatial = geom.out_spatial() as u64;
        let mut mean = vec![0u64; co];
        for img in per_image_counts {
            assert_eq!(img.len(), co, "channel count length mismatch");
            for (m, &c) in mean.iter_mut().zip(img) {
                *m += c as u64;
            }
        }
        let n = per_image_counts.len().max(1) as u64;
        let counts: Vec<u32> = mean.iter().map(|&m| (m as f64 / n as f64).round() as u32).collect();
        let total: u64 = mean.iter().sum();
        let frac = total as f64 / (n * co as u64 * spatial) as f64;
        Self {
            name: name.into(),
            geom: geom.into(),
            odq_sensitive_fraction: frac,
            drq_hi_fraction: frac,
            channel_counts: counts,
        }
    }

    /// Total MACs per image.
    pub fn macs(&self) -> u64 {
        self.geom.geom().macs()
    }

    /// Per-channel sensitive counts, synthesizing uniform counts from
    /// `odq_sensitive_fraction` when `channel_counts` is empty (so manually
    /// constructed workloads simulate sensibly).
    pub fn effective_channel_counts(&self) -> Vec<u32> {
        if !self.channel_counts.is_empty() {
            return self.channel_counts.clone();
        }
        let g = self.geom.geom();
        let per = (self.odq_sensitive_fraction * g.out_spatial() as f64).round() as u32;
        vec![per; g.out_channels]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ConvGeom {
        ConvGeom::new(16, 32, 16, 16, 3, 1, 1)
    }

    #[test]
    fn uniform_matches_requested_fraction() {
        let w = LayerWorkload::uniform("C1", geom(), 0.25);
        let spatial = geom().out_spatial() as f64;
        let total: u64 = w.channel_counts.iter().map(|&c| c as u64).sum();
        let frac = total as f64 / (spatial * 32.0);
        assert!((frac - 0.25).abs() < 0.03, "got {frac}");
        // Channels vary (jitter).
        let min = w.channel_counts.iter().min().unwrap();
        let max = w.channel_counts.iter().max().unwrap();
        assert!(max > min, "channel workloads should differ");
    }

    #[test]
    fn uniform_extremes() {
        let w0 = LayerWorkload::uniform("C1", geom(), 0.0);
        assert!(w0.channel_counts.iter().all(|&c| c == 0));
        let w1 = LayerWorkload::uniform("C1", geom(), 1.0);
        let spatial = geom().out_spatial() as u32;
        // everything capped at spatial
        assert!(w1.channel_counts.iter().all(|&c| c <= spatial));
        let total: u64 = w1.channel_counts.iter().map(|&c| c as u64).sum();
        assert!(total as f64 > 0.9 * (spatial as f64 * 32.0));
    }

    #[test]
    fn from_channel_counts_averages_images() {
        let g = ConvGeom::new(1, 2, 4, 4, 3, 1, 1);
        let per_img = vec![vec![4u32, 8], vec![6, 10]];
        let w = LayerWorkload::from_channel_counts("C1", g, &per_img);
        assert_eq!(w.channel_counts, vec![5, 9]);
        let expect = (4 + 8 + 6 + 10) as f64 / (2.0 * 2.0 * 16.0);
        assert!((w.odq_sensitive_fraction - expect).abs() < 1e-9);
    }

    #[test]
    fn from_channel_counts_with_no_images_is_zero_fraction() {
        let g = ConvGeom::new(1, 2, 4, 4, 3, 1, 1);
        let w = LayerWorkload::from_channel_counts("C1", g, &[]);
        assert_eq!(w.odq_sensitive_fraction, 0.0);
        assert!(w.channel_counts.iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn uniform_rejects_bad_fraction() {
        let _ = LayerWorkload::uniform("C1", geom(), 1.5);
    }

    #[test]
    fn macs_delegates_to_geometry() {
        let w = LayerWorkload::uniform("C1", geom(), 0.5);
        assert_eq!(w.macs(), geom().macs());
    }
}
