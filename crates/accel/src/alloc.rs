//! PE-array allocation between the sensitivity predictor and the result
//! executor (Sec. 4.2, Table 1).
//!
//! Throughput balance: with `P` predictor arrays and `E` executor arrays,
//! the predictor produces one output's partial per `col_len` INT2 MACs
//! (1 cycle each), while the executor spends `3 · col_len` cycles on each
//! *sensitive* output. In steady state the pipeline has no bubbles iff
//!
//! ```text
//! executor_time ≤ predictor_time  ⇔  3·s·W/E ≤ W/P  ⇔  s ≤ E / (3·P)
//! ```
//!
//! which reproduces Table 1 exactly: (9,18)→66%, (12,15)→41%, (15,12)→26%,
//! (18,9)→16%, (21,6)→9%.

use serde::Serialize;

use crate::config::{
    ARRAYS_PER_SLICE, FIXED_EXECUTOR_ARRAYS, FIXED_PREDICTOR_ARRAYS, RECONFIGURABLE_ARRAYS,
};

/// A predictor/executor split of the 27 PE arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Allocation {
    /// Arrays assigned to the sensitivity predictor.
    pub predictor_arrays: usize,
    /// Arrays assigned to the result executor.
    pub executor_arrays: usize,
}

impl Allocation {
    /// Construct and validate a split (must use all 27 arrays and respect
    /// the fixed minimums).
    pub fn new(predictor_arrays: usize, executor_arrays: usize) -> Self {
        assert_eq!(
            predictor_arrays + executor_arrays,
            ARRAYS_PER_SLICE,
            "allocation must use all {ARRAYS_PER_SLICE} arrays"
        );
        assert!(
            predictor_arrays >= FIXED_PREDICTOR_ARRAYS,
            "at least {FIXED_PREDICTOR_ARRAYS} predictor arrays are hard-wired"
        );
        assert!(
            executor_arrays >= FIXED_EXECUTOR_ARRAYS,
            "at least {FIXED_EXECUTOR_ARRAYS} executor arrays are hard-wired"
        );
        Self { predictor_arrays, executor_arrays }
    }

    /// The five reconfiguration steps of Table 1 (reconfigurable arrays
    /// move in groups of 3).
    pub fn table1() -> Vec<Self> {
        (0..=RECONFIGURABLE_ARRAYS / 3)
            .map(|i| {
                Self::new(
                    FIXED_PREDICTOR_ARRAYS + 3 * i,
                    ARRAYS_PER_SLICE - FIXED_PREDICTOR_ARRAYS - 3 * i,
                )
            })
            .collect()
    }
}

/// Maximum sensitive-output fraction this split sustains without pipeline
/// bubbles (Table 1's right column): `E / (3 P)`.
pub fn max_sensitive_fraction(alloc: Allocation) -> f64 {
    alloc.executor_arrays as f64 / (3.0 * alloc.predictor_arrays as f64)
}

/// Choose the allocation for a measured sensitive fraction `s`: the split
/// with the **most predictor arrays** (fastest prediction) among those
/// whose no-bubble bound still covers `s`. Above 66% nothing avoids
/// bubbles; the executor-heaviest split is returned.
pub fn choose_allocation(s: f64) -> Allocation {
    let mut best =
        Allocation::new(FIXED_PREDICTOR_ARRAYS, ARRAYS_PER_SLICE - FIXED_PREDICTOR_ARRAYS);
    for a in Allocation::table1() {
        if s <= max_sensitive_fraction(a) && a.predictor_arrays > best.predictor_arrays {
            best = a;
        }
    }
    best
}

/// Idle-PE accounting for one layer under a given allocation.
///
/// The predictor must process all `work` output-taps; the executor
/// re-processes the sensitive fraction at 3 cycles per tap. Whichever side
/// finishes early idles for the difference (Figs. 11/20 plot the idle
/// share of all PEs).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IdleStats {
    /// Layer makespan in array-normalized cycles.
    pub makespan: f64,
    /// Idle fraction of predictor PEs.
    pub predictor_idle: f64,
    /// Idle fraction of executor PEs.
    pub executor_idle: f64,
    /// Idle fraction over all 27 arrays (what the figures report).
    pub total_idle: f64,
}

/// Compute idle statistics for a layer with `s` sensitive fraction.
pub fn idle_stats(alloc: Allocation, s: f64) -> IdleStats {
    // Per-unit work: predictor 1, executor 3s, normalized by array counts.
    let t_pred = 1.0 / alloc.predictor_arrays as f64;
    let t_exec = 3.0 * s / alloc.executor_arrays as f64;
    let makespan = t_pred.max(t_exec);
    let predictor_idle = (makespan - t_pred) / makespan;
    let executor_idle = (makespan - t_exec) / makespan;
    let total_idle = (alloc.predictor_arrays as f64 * (makespan - t_pred)
        + alloc.executor_arrays as f64 * (makespan - t_exec))
        / (ARRAYS_PER_SLICE as f64 * makespan);
    IdleStats { makespan, predictor_idle, executor_idle, total_idle }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduced_exactly() {
        // Paper's Table 1: (#pred, #exec) -> max sensitive %.
        let expect = [(9, 18, 66), (12, 15, 41), (15, 12, 26), (18, 9, 16), (21, 6, 9)];
        for (p, e, pct) in expect {
            let a = Allocation::new(p, e);
            let s = max_sensitive_fraction(a);
            assert_eq!((s * 100.0).floor() as i64, pct, "alloc ({p},{e})");
        }
    }

    #[test]
    fn table1_has_five_configs() {
        let t = Allocation::table1();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], Allocation::new(9, 18));
        assert_eq!(t[4], Allocation::new(21, 6));
    }

    #[test]
    fn chooser_picks_most_predictors_without_bubbles() {
        assert_eq!(choose_allocation(0.08), Allocation::new(21, 6));
        assert_eq!(choose_allocation(0.15), Allocation::new(18, 9));
        assert_eq!(choose_allocation(0.25), Allocation::new(15, 12));
        assert_eq!(choose_allocation(0.40), Allocation::new(12, 15));
        assert_eq!(choose_allocation(0.60), Allocation::new(9, 18));
        // Paper's Fig. 17 walkthrough: 15% sensitive -> 18 predictor / 9
        // executor arrays.
        assert_eq!(choose_allocation(0.15), Allocation::new(18, 9));
        // Beyond the 66% bound: executor-heaviest split, bubbles accepted.
        assert_eq!(choose_allocation(0.9), Allocation::new(9, 18));
    }

    #[test]
    fn idle_is_zero_at_exact_balance() {
        let a = Allocation::new(12, 15);
        let s = max_sensitive_fraction(a);
        let stats = idle_stats(a, s);
        assert!(stats.total_idle.abs() < 1e-12);
        assert!(stats.predictor_idle.abs() < 1e-12);
        assert!(stats.executor_idle.abs() < 1e-12);
    }

    #[test]
    fn executor_idles_when_few_outputs_sensitive() {
        let a = Allocation::new(12, 15);
        let stats = idle_stats(a, 0.05);
        assert!(stats.executor_idle > 0.5, "executor mostly idle at 5% sensitive");
        assert!(stats.predictor_idle.abs() < 1e-12);
        assert!(stats.total_idle > 0.0 && stats.total_idle < 1.0);
    }

    #[test]
    fn predictor_idles_when_most_outputs_sensitive() {
        let a = Allocation::new(18, 9);
        let stats = idle_stats(a, 0.6);
        assert!(stats.predictor_idle > 0.4);
        assert!(stats.executor_idle.abs() < 1e-12);
    }

    #[test]
    fn dynamic_allocation_beats_any_fixed_split_on_average() {
        // Per-layer sensitive fractions vary widely (Figs. 9/10), so a
        // single fixed split must be wrong for most layers. Averaged over
        // a realistic spread, the per-layer dynamic choice idles less than
        // every fixed allocation.
        let spread = [0.08, 0.12, 0.2, 0.3, 0.45, 0.6];
        let dyn_mean: f64 =
            spread.iter().map(|&s| idle_stats(choose_allocation(s), s).total_idle).sum::<f64>()
                / spread.len() as f64;
        for static_alloc in Allocation::table1() {
            let st_mean: f64 =
                spread.iter().map(|&s| idle_stats(static_alloc, s).total_idle).sum::<f64>()
                    / spread.len() as f64;
            assert!(
                dyn_mean < st_mean + 1e-12,
                "dynamic mean idle {dyn_mean:.3} vs static({static_alloc:?}) {st_mean:.3}"
            );
        }
        // And the dynamic policy keeps idle below Fig. 20's ~18% on average.
        assert!(dyn_mean < 0.18, "dynamic mean idle {dyn_mean:.3}");
    }

    #[test]
    #[should_panic(expected = "hard-wired")]
    fn allocation_respects_fixed_minimums() {
        Allocation::new(23, 4);
    }
}
