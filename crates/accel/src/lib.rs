//! # odq-accel
//!
//! Cycle-level simulator of the paper's reconfigurable ODQ accelerator
//! (Sec. 4) and its comparison baselines (Table 2). The paper's Verilog /
//! Vivado / Design Compiler / CACTI toolchain is replaced by analytical and
//! event-driven models (DESIGN.md, substitution 3); all experiments
//! compare *normalized* time/energy, which these models preserve.
//!
//! Components:
//!
//! * [`config`] — accelerator configurations: INT16/INT8 DoReFa baselines,
//!   DRQ, and ODQ (27 PE arrays × 180 PEs = 4860 PEs per slice; 9 fixed
//!   predictor arrays, 6 fixed executor arrays, 12 reconfigurable ones).
//! * [`alloc`] — PE-array allocation: the Table 1 no-bubble condition
//!   (`s_max = E / 3P`), the dynamic allocation chooser, and idle-PE
//!   accounting for static vs dynamic schemes (Figs. 11/20).
//! * [`sched`] — the executor's 3-cluster dynamic workload schedule
//!   (Figs. 14–16): per-OFM queues, longest-queue-first arbitration,
//!   static vs dynamic comparison.
//! * [`energy`] — CACTI-style energy model: per-MAC energy quadratic in
//!   bit width, SRAM/DRAM per-byte access energies, static power
//!   (Fig. 21's DRAM/Buffer/Cores breakdown).
//! * [`sim`] — analytical layer/network simulation producing cycles,
//!   idle-PE fractions, memory traffic and energy for each accelerator
//!   configuration (Figs. 19–21).
//! * [`pipeline`] — event-driven simulation of the Fig. 17 workflow
//!   (predictor waves, output-buffer backlog, mid-layer reconfiguration);
//!   cross-validated against the analytical model.
//! * [`memory`] — line-buffer / global-buffer / DRAM subsystem with exact
//!   per-layer reuse accounting (Fig. 12's Im2col/Pack engine + buffers).
//! * [`workload`] — layer workload descriptions (geometry + sensitivity),
//!   constructed either from measured ODQ masks or synthetically.

pub mod alloc;
pub mod config;
pub mod energy;
pub mod memory;
pub mod pipeline;
pub mod sched;
pub mod sim;
pub mod workload;

pub use alloc::{choose_allocation, max_sensitive_fraction, Allocation};
pub use config::{AccelConfig, AccelKind, ConfigError};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use sim::{simulate_layer, simulate_network, LayerResult, NetworkResult};
pub use workload::LayerWorkload;
