//! Layer- and network-level simulation.
//!
//! Cycle model (per layer, per image):
//!
//! * **Static INT-k** — every MAC costs `(op_bits / pe_bits)²` cycles on a
//!   BitFusion-style multi-precision PE (1 cycle when widths match);
//!   throughput = `total_pes` MACs/cycle at native width.
//! * **DRQ** — the high-precision input fraction runs at
//!   `(hi/pe)² = 4` cycles/MAC, the rest at 1; plus a small input-region
//!   detection overhead.
//! * **ODQ** — the predictor streams *every* output's receptive field at
//!   1 INT2 MAC/PE/cycle over its PE arrays; the executor re-processes the
//!   sensitive fraction at 3 cycles per tap over its arrays, with the
//!   per-channel workload imbalance resolved by the cluster scheduler
//!   ([`crate::sched`]). Predictor and executor run as a pipeline, so a
//!   layer's makespan is the slower of the two stages.
//!
//! Memory model: weights/inputs/outputs stream through DRAM once (inputs
//! re-stream when the working set exceeds the 0.17 MB buffer); line
//! buffers give dense phases an operand-reuse factor of 8, while the
//! executor's irregular accesses only achieve 2 (the 3-cluster design's
//! round-robin data delivery is what keeps it that high, Sec. 4.3).

use serde::Serialize;

use crate::alloc::{choose_allocation, idle_stats, Allocation};
use crate::config::{AccelConfig, AccelKind, PES_PER_ARRAY};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::sched::{schedule_dynamic, CYCLES_PER_SENSITIVE_OUTPUT};
use crate::workload::LayerWorkload;

/// Dense-phase operand reuse factor provided by the line buffers.
const DENSE_REUSE: f64 = 8.0;
/// Executor-phase operand reuse factor (irregular sensitive outputs; the
/// 3-cluster round-robin data delivery keeps it at ~3 rather than 1).
const SPARSE_REUSE: f64 = 3.0;

/// Simulation result for one layer.
#[derive(Clone, Debug, Serialize)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Compute-bound cycle count.
    pub compute_cycles: f64,
    /// Final cycle count including memory stalls.
    pub total_cycles: f64,
    /// Idle fraction of PEs during this layer (meaningful for ODQ).
    pub idle_fraction: f64,
    /// `(operand_bits, count)` MAC tallies for the energy model.
    pub macs_by_bits: Vec<(u8, u64)>,
    /// DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// On-chip buffer traffic in bytes.
    pub sram_bytes: f64,
    /// The PE-array allocation used (ODQ only).
    pub allocation: Option<Allocation>,
}

/// Simulation result for a whole network.
#[derive(Clone, Debug, Serialize)]
pub struct NetworkResult {
    /// Accelerator configuration name.
    pub config: String,
    /// Per-layer results.
    pub layers: Vec<LayerResult>,
    /// Total cycles.
    pub total_cycles: f64,
    /// Execution time in seconds at the configured clock.
    pub time_s: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Cycle-weighted PE idle fraction.
    pub idle_fraction: f64,
}

/// Simulate one layer on one accelerator configuration.
pub fn simulate_layer(cfg: &AccelConfig, w: &LayerWorkload) -> LayerResult {
    let geom = w.geom.geom();
    let macs = geom.macs();
    let out_features = geom.out_features() as f64;
    let in_features = (geom.in_channels * geom.in_h * geom.in_w) as f64;
    let weight_count = (geom.col_len() * geom.out_channels) as f64;

    let (compute_cycles, idle_fraction, macs_by_bits, op_bits, allocation, sram_compute) = match cfg
        .kind
    {
        AccelKind::Static { op_bits } => {
            let cpm = cycles_per_mac(op_bits, cfg.pe_bits);
            let cycles = macs as f64 * cpm / cfg.total_pes as f64;
            let sram = macs as f64 * 2.0 * (op_bits as f64 / 8.0) / DENSE_REUSE;
            (cycles, 0.0, vec![(op_bits, macs)], op_bits, None, sram)
        }
        AccelKind::Drq { hi_bits, lo_bits } => {
            let f = w.drq_hi_fraction.clamp(0.0, 1.0);
            let cpm_hi = cycles_per_mac(hi_bits, cfg.pe_bits);
            let cpm_lo = cycles_per_mac(lo_bits, cfg.pe_bits);
            let hi_macs = (macs as f64 * f) as u64;
            let lo_macs = macs - hi_macs;
            // Region detection: one comparison per input feature,
            // executed across the PE array.
            let detect = in_features / cfg.total_pes as f64;
            let cycles =
                (hi_macs as f64 * cpm_hi + lo_macs as f64 * cpm_lo) / cfg.total_pes as f64 + detect;
            let sram = (hi_macs as f64 * 2.0 * (hi_bits as f64 / 8.0)
                + lo_macs as f64 * 2.0 * (lo_bits as f64 / 8.0))
                / DENSE_REUSE;
            (cycles, 0.0, vec![(hi_bits, hi_macs), (lo_bits, lo_macs)], hi_bits, None, sram)
        }
        AccelKind::Odq { dynamic_alloc, static_predictor_arrays } => {
            let s = w.odq_sensitive_fraction;
            let alloc = if dynamic_alloc {
                choose_allocation(s)
            } else {
                Allocation::new(
                    static_predictor_arrays,
                    crate::config::ARRAYS_PER_SLICE - static_predictor_arrays,
                )
            };
            let pred_pes = (alloc.predictor_arrays * PES_PER_ARRAY) as f64;
            let exec_pes = (alloc.executor_arrays * PES_PER_ARRAY) as f64;

            let pred_cycles = macs as f64 / pred_pes;
            let exec_taps = macs as f64 * s;
            let exec_ideal = CYCLES_PER_SENSITIVE_OUTPUT as f64 * exec_taps / exec_pes;

            // Cluster-schedule imbalance from the per-channel workload.
            // The crossbar-based dynamic workload scheduler is part of
            // the executor datapath and operates regardless of how PE
            // arrays were *allocated* (static allocation only fixes the
            // predictor/executor split). The static scheduler is
            // exercised by the scheduling ablation bench.
            let counts = w.effective_channel_counts();
            let sched = schedule_dynamic(&counts, alloc.executor_arrays);
            let ideal_span = {
                let total: u64 = counts.iter().map(|&c| c as u64).sum::<u64>();
                (total as f64 * CYCLES_PER_SENSITIVE_OUTPUT as f64 / alloc.executor_arrays as f64)
                    .max(1.0)
            };
            let imbalance = (sched.makespan as f64 / ideal_span).max(1.0);
            let exec_cycles = exec_ideal * imbalance;

            let makespan = pred_cycles.max(exec_cycles);
            // Idle accounting: predictor busy `pred_cycles`, executor
            // busy `exec_ideal` (imbalance cycles are idle slots).
            let busy = alloc.predictor_arrays as f64 * pred_cycles
                + alloc.executor_arrays as f64 * exec_ideal;
            let idle = 1.0 - busy / (crate::config::ARRAYS_PER_SLICE as f64 * makespan);
            // Sanity fallback to the analytical model for degenerate
            // (zero-work) layers.
            let idle = if makespan > 0.0 { idle } else { idle_stats(alloc, s).total_idle };

            let exec_plane_macs = (3.0 * exec_taps) as u64;
            // Predictor streams 2-bit planes with full line-buffer
            // reuse; the executor's irregular accesses achieve the
            // cluster-limited SPARSE_REUSE.
            let plane_bytes = 2.0 / 8.0;
            let sram = macs as f64 * 2.0 * plane_bytes / DENSE_REUSE
                + exec_plane_macs as f64 * 2.0 * plane_bytes / SPARSE_REUSE;
            (
                makespan,
                idle.clamp(0.0, 1.0),
                vec![(2, macs + exec_plane_macs)],
                4, // INT4 operand storage in buffers/DRAM
                Some(alloc),
                sram,
            )
        }
    };

    // --- Memory traffic ---
    let bytes_per = op_bits as f64 / 8.0;
    let weight_bytes = weight_count * bytes_per;
    let input_bytes = in_features * bytes_per;
    let output_bytes = out_features * bytes_per;
    // Input re-streams when weights overflow half the on-chip buffer.
    let reloads = (weight_bytes / (cfg.onchip_bytes as f64 * 0.5)).ceil().max(1.0);
    let mask_bytes =
        if matches!(cfg.kind, AccelKind::Odq { .. }) { out_features / 8.0 } else { 0.0 };
    let dram_bytes = weight_bytes + input_bytes * reloads + output_bytes + mask_bytes;

    let sram_bytes = sram_compute + output_bytes + mask_bytes * 2.0;

    // Memory-bound stall: the layer cannot finish faster than DRAM streams.
    let mem_cycles = dram_bytes / cfg.dram_bytes_per_cycle;
    let total_cycles = compute_cycles.max(mem_cycles);

    LayerResult {
        name: w.name.clone(),
        compute_cycles,
        total_cycles,
        idle_fraction,
        macs_by_bits,
        dram_bytes,
        sram_bytes,
        allocation,
    }
}

/// Simulate a whole network (one image).
pub fn simulate_network(
    cfg: &AccelConfig,
    layers: &[LayerWorkload],
    em: &EnergyModel,
) -> NetworkResult {
    let per_layer: Vec<LayerResult> = layers.iter().map(|w| simulate_layer(cfg, w)).collect();
    let total_cycles: f64 = per_layer.iter().map(|l| l.total_cycles).sum();
    let time_s = total_cycles / (cfg.freq_mhz * 1e6);

    let mut macs: Vec<(u8, u64)> = Vec::new();
    for l in &per_layer {
        for &(b, n) in &l.macs_by_bits {
            if let Some(e) = macs.iter_mut().find(|(bb, _)| *bb == b) {
                e.1 += n;
            } else {
                macs.push((b, n));
            }
        }
    }
    let sram: f64 = per_layer.iter().map(|l| l.sram_bytes).sum();
    let dram: f64 = per_layer.iter().map(|l| l.dram_bytes).sum();
    let energy = em.breakdown(&macs, sram, dram, time_s);

    let idle = if total_cycles > 0.0 {
        per_layer.iter().map(|l| l.idle_fraction * l.total_cycles).sum::<f64>() / total_cycles
    } else {
        0.0
    };

    NetworkResult {
        config: cfg.name.clone(),
        layers: per_layer,
        total_cycles,
        time_s,
        energy,
        idle_fraction: idle,
    }
}

/// BitFusion cycle cost: `(op / pe)²`, minimum 1.
fn cycles_per_mac(op_bits: u8, pe_bits: u8) -> f64 {
    let r = (op_bits as f64 / pe_bits as f64).max(1.0);
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_tensor::ConvGeom;

    fn workloads(s: f64) -> Vec<LayerWorkload> {
        // A ResNet-ish stack of three layers.
        vec![
            LayerWorkload::uniform("C1", ConvGeom::new(3, 16, 32, 32, 3, 1, 1), s),
            LayerWorkload::uniform("C2", ConvGeom::new(16, 16, 32, 32, 3, 1, 1), s),
            LayerWorkload::uniform("C3", ConvGeom::new(16, 32, 32, 32, 3, 2, 1), s),
        ]
    }

    #[test]
    fn cycles_per_mac_table() {
        assert_eq!(cycles_per_mac(16, 16), 1.0);
        assert_eq!(cycles_per_mac(8, 4), 4.0);
        assert_eq!(cycles_per_mac(4, 4), 1.0);
        assert_eq!(cycles_per_mac(2, 2), 1.0);
        assert_eq!(cycles_per_mac(2, 4), 1.0, "narrow ops cost one full cycle");
    }

    #[test]
    fn fig19_ordering_odq_fastest() {
        let em = EnergyModel::default();
        let ws = workloads(0.3);
        let t: Vec<f64> = AccelConfig::table2()
            .iter()
            .map(|c| simulate_network(c, &ws, &em).total_cycles)
            .collect();
        // INT16 slowest; ODQ fastest; DRQ beats INT8.
        let (int16, int8, drq, odq) = (t[0], t[1], t[2], t[3]);
        assert!(odq < drq, "ODQ {odq} must beat DRQ {drq}");
        assert!(drq < int8, "DRQ {drq} must beat INT8 {int8}");
        assert!(int8 < int16, "INT8 {int8} must beat INT16 {int16}");
        // Magnitudes in the paper's ballpark: ODQ ~97% faster than INT16,
        // ~60–80% faster than DRQ.
        assert!(odq / int16 < 0.12, "ODQ/INT16 = {}", odq / int16);
        let vs_drq = 1.0 - odq / drq;
        assert!((0.4..0.9).contains(&vs_drq), "ODQ vs DRQ speedup {vs_drq}");
    }

    #[test]
    fn fig21_ordering_odq_most_efficient() {
        let em = EnergyModel::default();
        let ws = workloads(0.3);
        let e: Vec<f64> = AccelConfig::table2()
            .iter()
            .map(|c| simulate_network(c, &ws, &em).energy.total_nj())
            .collect();
        assert!(e[3] < e[2] && e[2] < e[1] && e[1] < e[0], "energy ordering: {e:?}");
        assert!(e[3] / e[0] < 0.2, "ODQ/INT16 energy = {}", e[3] / e[0]);
    }

    #[test]
    fn odq_dynamic_allocation_tracks_sensitive_fraction() {
        let cfg = AccelConfig::odq();
        for (s, want_pred) in [(0.08, 21), (0.15, 18), (0.25, 15), (0.4, 12), (0.6, 9)] {
            let w = LayerWorkload::uniform("C1", ConvGeom::new(16, 32, 16, 16, 3, 1, 1), s);
            let r = simulate_layer(&cfg, &w);
            assert_eq!(
                r.allocation.expect("ODQ sets allocation").predictor_arrays,
                want_pred,
                "s={s}"
            );
        }
    }

    #[test]
    fn odq_idle_small_with_dynamic_alloc() {
        let em = EnergyModel::default();
        // Across realistic sensitive fractions, dynamic ODQ keeps idle PEs
        // below ~20% (Fig. 20: max 18%).
        for s in [0.08, 0.15, 0.3, 0.5] {
            let r = simulate_network(&AccelConfig::odq(), &workloads(s), &em);
            assert!(r.idle_fraction < 0.25, "s={s}: idle {}", r.idle_fraction);
        }
    }

    #[test]
    fn odq_static_alloc_idles_more() {
        let em = EnergyModel::default();
        let ws = workloads(0.1); // few sensitive outputs
        let dynamic = simulate_network(&AccelConfig::odq(), &ws, &em);
        let static12 = simulate_network(&AccelConfig::odq_static(12).unwrap(), &ws, &em);
        assert!(
            static12.idle_fraction > dynamic.idle_fraction + 0.05,
            "static {} vs dynamic {}",
            static12.idle_fraction,
            dynamic.idle_fraction
        );
        // Fig. 11's range: static allocation idles 14–50%.
        assert!(static12.idle_fraction > 0.14);
    }

    #[test]
    fn higher_sensitivity_means_more_odq_cycles() {
        let em = EnergyModel::default();
        let lo = simulate_network(&AccelConfig::odq(), &workloads(0.1), &em);
        let hi = simulate_network(&AccelConfig::odq(), &workloads(0.6), &em);
        assert!(hi.total_cycles > lo.total_cycles);
    }

    #[test]
    fn energy_breakdown_components_nonzero() {
        let em = EnergyModel::default();
        let r = simulate_network(&AccelConfig::odq(), &workloads(0.3), &em);
        assert!(r.energy.dram_nj > 0.0);
        assert!(r.energy.buffer_nj > 0.0);
        assert!(r.energy.cores_nj > 0.0);
    }

    #[test]
    fn memory_bound_layers_stall() {
        // A 1x1 conv with huge channel counts is DRAM-bound on weights.
        let g = ConvGeom::new(2048, 2048, 2, 2, 1, 1, 0);
        let w = LayerWorkload::uniform("fat1x1", g, 0.2);
        let cfg = AccelConfig::odq();
        let r = simulate_layer(&cfg, &w);
        assert!(r.total_cycles >= r.compute_cycles);
        assert!(r.dram_bytes > cfg.onchip_bytes as f64 / 2.0);
    }
}
