//! Memory-subsystem model: DRAM ↔ global buffer ↔ line buffers ↔ PEs
//! (the paper's Fig. 12 datapath with the Im2col/Pack engine).
//!
//! Unlike the coarse per-MAC reuse constants in [`crate::sim`], this module
//! accounts traffic *exactly* from layer geometry:
//!
//! * each input element is read from DRAM once (re-streamed only when the
//!   weight working set evicts it);
//! * with line buffers holding `K` input rows, each element moves from the
//!   global buffer into line buffers exactly once and is reused for all
//!   `K×K` kernel taps that touch it — without them every output window
//!   re-reads its receptive field;
//! * the executor's sparse gathers re-read the receptive fields of
//!   *sensitive* outputs, amortized over the 3 clusters (Sec. 4.3: data is
//!   delivered to one cluster per cycle, so three arrays share a fetch).

use serde::Serialize;

use crate::config::EXECUTOR_CLUSTERS;
use crate::workload::LayerWorkload;

/// Byte-level traffic of one layer through the memory hierarchy.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct MemoryTraffic {
    /// Bytes read from DRAM (weights + inputs, with re-streaming).
    pub dram_read: f64,
    /// Bytes written to DRAM (outputs + sensitivity mask).
    pub dram_write: f64,
    /// Bytes read from the global on-chip buffer.
    pub gbuf_read: f64,
    /// Bytes written into the global on-chip buffer.
    pub gbuf_write: f64,
    /// Bytes moved through line buffers (dense predictor stream).
    pub linebuf: f64,
}

impl MemoryTraffic {
    /// Total DRAM bytes.
    pub fn dram_total(&self) -> f64 {
        self.dram_read + self.dram_write
    }

    /// Total on-chip (global + line buffer) bytes.
    pub fn onchip_total(&self) -> f64 {
        self.gbuf_read + self.gbuf_write + self.linebuf
    }
}

/// Memory configuration knobs (for the line-buffer ablation).
#[derive(Clone, Copy, Debug)]
pub struct MemoryCfg {
    /// Operand storage width in bits (4 for ODQ's INT4 operands).
    pub op_bits: u8,
    /// Whether line buffers are present (Fig. 12); without them, dense
    /// reads fall back to per-window gathers.
    pub line_buffers: bool,
    /// Global-buffer capacity in bytes (0.17 MB in Table 2).
    pub gbuf_bytes: usize,
}

impl Default for MemoryCfg {
    fn default() -> Self {
        Self { op_bits: 4, line_buffers: true, gbuf_bytes: (0.17 * 1024.0 * 1024.0) as usize }
    }
}

/// Exact traffic accounting for one ODQ layer.
pub fn layer_traffic(w: &LayerWorkload, cfg: &MemoryCfg) -> MemoryTraffic {
    let g = w.geom.geom();
    let bytes = cfg.op_bits as f64 / 8.0;
    let in_elems = (g.in_channels * g.in_h * g.in_w) as f64;
    let weight_elems = (g.col_len() * g.out_channels) as f64;
    let out_elems = g.out_features() as f64;
    let spatial = g.out_spatial() as f64;

    // DRAM: weights stream once; inputs re-stream when the weight working
    // set exceeds half the buffer (double-buffered halves).
    let weight_bytes = weight_elems * bytes;
    let reloads = (weight_bytes / (cfg.gbuf_bytes as f64 * 0.5)).ceil().max(1.0);
    let mask_bytes = out_elems / 8.0;
    let dram_read = weight_bytes + in_elems * bytes * reloads;
    let dram_write = out_elems * bytes + mask_bytes;

    // Global buffer absorbs everything read from DRAM, plus output staging.
    let gbuf_write = dram_read + out_elems * bytes;

    // Dense predictor stream: with line buffers each input element enters
    // the line buffers once; the Im2col/Pack engine then broadcasts it to
    // the PE arrays for free. Without line buffers every output window
    // re-reads its K·K·Ci receptive field.
    let dense_reads = if cfg.line_buffers {
        in_elems // each element fetched once
    } else {
        spatial * g.col_len() as f64 // per-window gather
    };
    // Weights are register-resident in the arrays: one fill per layer
    // (weight-stationary dataflow).
    let gbuf_read_dense = dense_reads * bytes + weight_bytes;

    // Executor sparse gathers: sensitive outputs re-read their receptive
    // fields; the 3-cluster round-robin shares each fetch across clusters.
    let sensitive_outputs = out_elems * w.odq_sensitive_fraction;
    let sparse_reads = sensitive_outputs * g.col_len() as f64 / EXECUTOR_CLUSTERS as f64;
    let gbuf_read = gbuf_read_dense + sparse_reads * bytes;

    let linebuf = if cfg.line_buffers { dense_reads * bytes } else { 0.0 };

    MemoryTraffic { dram_read, dram_write, gbuf_read, gbuf_write, linebuf }
}

/// Whether a layer's line buffers (K input rows across all channels) fit
/// the buffer budget alongside the double-buffered weights.
pub fn line_buffers_fit(w: &LayerWorkload, cfg: &MemoryCfg) -> bool {
    let g = w.geom.geom();
    let bytes = cfg.op_bits as f64 / 8.0;
    let rows = (g.kernel * g.in_w * g.in_channels) as f64 * bytes;
    let weights = (g.col_len() * g.out_channels) as f64 * bytes;
    rows + weights.min(cfg.gbuf_bytes as f64 * 0.5) <= cfg.gbuf_bytes as f64
}

/// Network-level aggregate.
pub fn network_traffic(layers: &[LayerWorkload], cfg: &MemoryCfg) -> MemoryTraffic {
    let mut total = MemoryTraffic::default();
    for w in layers {
        let t = layer_traffic(w, cfg);
        total.dram_read += t.dram_read;
        total.dram_write += t.dram_write;
        total.gbuf_read += t.gbuf_read;
        total.gbuf_write += t.gbuf_write;
        total.linebuf += t.linebuf;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_tensor::ConvGeom;

    fn layer(s: f64) -> LayerWorkload {
        LayerWorkload::uniform("L", ConvGeom::new(16, 32, 32, 32, 3, 1, 1), s)
    }

    #[test]
    fn line_buffers_cut_dense_reads_by_receptive_reuse() {
        // Compare on a zero-sensitivity layer so the (identical) executor
        // gather term does not dilute the dense-stream comparison.
        let w = layer(0.0);
        let with = layer_traffic(&w, &MemoryCfg::default());
        let without = layer_traffic(&w, &MemoryCfg { line_buffers: false, ..Default::default() });
        // Reuse factor for 3x3 stride-1: each element serves ~9 windows.
        let ratio = without.gbuf_read / with.gbuf_read;
        assert!(ratio > 3.0, "line buffers should cut reads substantially: {ratio:.1}x");
        assert!(with.linebuf > 0.0);
        assert_eq!(without.linebuf, 0.0);
    }

    #[test]
    fn dram_traffic_independent_of_line_buffers() {
        let w = layer(0.2);
        let a = layer_traffic(&w, &MemoryCfg::default());
        let b = layer_traffic(&w, &MemoryCfg { line_buffers: false, ..Default::default() });
        assert_eq!(a.dram_read, b.dram_read);
        assert_eq!(a.dram_write, b.dram_write);
    }

    #[test]
    fn sparse_gathers_scale_with_sensitive_fraction() {
        let lo = layer_traffic(&layer(0.05), &MemoryCfg::default());
        let hi = layer_traffic(&layer(0.5), &MemoryCfg::default());
        assert!(hi.gbuf_read > lo.gbuf_read, "more sensitive outputs, more gathers");
    }

    #[test]
    fn weight_heavy_layer_restreams_inputs() {
        // A 1x1 layer with enormous channel counts exceeds the buffer.
        let g = ConvGeom::new(4096, 4096, 4, 4, 1, 1, 0);
        let w = LayerWorkload::uniform("fat", g, 0.1);
        let t = layer_traffic(&w, &MemoryCfg::default());
        let weight_bytes = (4096.0 * 4096.0) * 0.5;
        let in_bytes = (4096 * 16) as f64 * 0.5;
        assert!(
            t.dram_read > weight_bytes + in_bytes * 1.5,
            "inputs must re-stream: {} vs {}",
            t.dram_read,
            weight_bytes + in_bytes
        );
    }

    #[test]
    fn fits_check_sane() {
        assert!(line_buffers_fit(&layer(0.1), &MemoryCfg::default()));
        let tiny = MemoryCfg { gbuf_bytes: 64, ..Default::default() };
        assert!(!line_buffers_fit(&layer(0.1), &tiny));
    }

    #[test]
    fn network_aggregates() {
        let ws = vec![layer(0.1), layer(0.3)];
        let total = network_traffic(&ws, &MemoryCfg::default());
        let a = layer_traffic(&ws[0], &MemoryCfg::default());
        let b = layer_traffic(&ws[1], &MemoryCfg::default());
        assert!((total.dram_total() - a.dram_total() - b.dram_total()).abs() < 1e-6);
        assert!((total.onchip_total() - a.onchip_total() - b.onchip_total()).abs() < 1e-6);
    }

    #[test]
    fn traffic_positive_and_mask_included() {
        let t = layer_traffic(&layer(0.3), &MemoryCfg::default());
        assert!(t.dram_read > 0.0 && t.dram_write > 0.0);
        // Output write includes the 1-bit-per-feature mask.
        let g = ConvGeom::new(16, 32, 32, 32, 3, 1, 1);
        let out_bytes = g.out_features() as f64 * 0.5;
        assert!(t.dram_write > out_bytes, "mask bytes must be on top of outputs");
    }
}
