//! Accelerator configurations (the paper's Table 2).
//!
//! All four accelerators share the same silicon area budget and the same
//! 0.17 MB of on-chip memory; they differ in PE bit width (and therefore
//! PE count) and in execution policy.

use serde::Serialize;

/// Execution policy of an accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum AccelKind {
    /// Static quantization: every MAC at `op_bits`, executed on PEs of
    /// `pe_bits` (a `(op/pe)²` cycle cost on BitFusion-style PEs).
    Static {
        /// Operand bit width of the computation.
        op_bits: u8,
    },
    /// DRQ: mixed `hi_bits`/`lo_bits` MACs on multi-precision PEs; the
    /// high fraction is set per layer from the input-region sensitivity.
    Drq {
        /// High-precision operand width.
        hi_bits: u8,
        /// Low-precision operand width.
        lo_bits: u8,
    },
    /// ODQ: INT2 predictor pass over every output + 3-cycle executor pass
    /// over sensitive outputs, with PE-array allocation per Table 1.
    Odq {
        /// Use dynamic (reconfigurable) PE allocation; `false` = static
        /// split for the Fig. 11 study.
        dynamic_alloc: bool,
        /// With static allocation: number of predictor arrays.
        static_predictor_arrays: usize,
    },
}

/// One accelerator configuration (a Table 2 column).
#[derive(Clone, Debug, Serialize)]
pub struct AccelConfig {
    /// Display name.
    pub name: String,
    /// Total processing elements.
    pub total_pes: usize,
    /// Native PE bit width (area-determining).
    pub pe_bits: u8,
    /// On-chip buffer capacity in bytes (0.17 MB for all configs).
    pub onchip_bytes: usize,
    /// Clock frequency in MHz (shared; results are normalized anyway).
    pub freq_mhz: f64,
    /// DRAM bandwidth in bytes/cycle.
    pub dram_bytes_per_cycle: f64,
    /// Execution policy.
    pub kind: AccelKind,
}

/// PEs per PE array in the ODQ accelerator (27 arrays × 180 = 4860,
/// matching Table 2's PE count).
pub const PES_PER_ARRAY: usize = 180;
/// PE arrays per slice.
pub const ARRAYS_PER_SLICE: usize = 27;
/// Arrays hard-wired as predictors.
pub const FIXED_PREDICTOR_ARRAYS: usize = 9;
/// Arrays hard-wired as executors.
pub const FIXED_EXECUTOR_ARRAYS: usize = 6;
/// Reconfigurable arrays (predictor or executor).
pub const RECONFIGURABLE_ARRAYS: usize = 12;
/// Executor clusters (Sec. 4.3: data is delivered to one cluster per
/// cycle, amortizing memory requests over the 3-cycle MAC).
pub const EXECUTOR_CLUSTERS: usize = 3;

const ONCHIP_BYTES: usize = (0.17 * 1024.0 * 1024.0) as usize;

/// An invalid accelerator configuration request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid accelerator config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl AccelConfig {
    /// INT16 DoReFa-Net baseline: 120 native INT16 PEs.
    pub fn int16() -> Self {
        Self {
            name: "INT16".into(),
            total_pes: 120,
            pe_bits: 16,
            onchip_bytes: ONCHIP_BYTES,
            freq_mhz: 500.0,
            dram_bytes_per_cycle: 64.0,
            kind: AccelKind::Static { op_bits: 16 },
        }
    }

    /// INT8 DoReFa-Net baseline: 1692 INT4 multi-precision PEs running
    /// 8-bit MACs (4 cycles each, BitFusion-style).
    pub fn int8() -> Self {
        Self {
            name: "INT8".into(),
            total_pes: 1692,
            pe_bits: 4,
            onchip_bytes: ONCHIP_BYTES,
            freq_mhz: 500.0,
            dram_bytes_per_cycle: 64.0,
            kind: AccelKind::Static { op_bits: 8 },
        }
    }

    /// DRQ (INT8-INT4): 1692 INT4 multi-precision PEs.
    pub fn drq() -> Self {
        Self {
            name: "DRQ".into(),
            total_pes: 1692,
            pe_bits: 4,
            onchip_bytes: ONCHIP_BYTES,
            freq_mhz: 500.0,
            dram_bytes_per_cycle: 64.0,
            kind: AccelKind::Drq { hi_bits: 8, lo_bits: 4 },
        }
    }

    /// ODQ: 4860 INT2 PEs in 27 arrays, dynamically reconfigured.
    pub fn odq() -> Self {
        Self {
            name: "ODQ".into(),
            total_pes: ARRAYS_PER_SLICE * PES_PER_ARRAY,
            pe_bits: 2,
            onchip_bytes: ONCHIP_BYTES,
            freq_mhz: 500.0,
            dram_bytes_per_cycle: 64.0,
            kind: AccelKind::Odq { dynamic_alloc: true, static_predictor_arrays: 0 },
        }
    }

    /// ODQ with a *static* predictor/executor split (Fig. 11's study).
    ///
    /// `predictor_arrays` often comes from user input (bench CLI flags,
    /// sweep configs), so an out-of-range split is a recoverable
    /// [`ConfigError`], not a panic.
    pub fn odq_static(predictor_arrays: usize) -> Result<Self, ConfigError> {
        let valid = FIXED_PREDICTOR_ARRAYS..=FIXED_PREDICTOR_ARRAYS + RECONFIGURABLE_ARRAYS;
        if !valid.contains(&predictor_arrays) {
            return Err(ConfigError(format!(
                "predictor arrays must be within {}..={}, got {predictor_arrays}",
                valid.start(),
                valid.end()
            )));
        }
        let mut c = Self::odq();
        c.name = format!("ODQ-static-{predictor_arrays}p");
        c.kind = AccelKind::Odq { dynamic_alloc: false, static_predictor_arrays: predictor_arrays };
        Ok(c)
    }

    /// All four Table 2 configurations in paper order.
    pub fn table2() -> Vec<Self> {
        vec![Self::int16(), Self::int8(), Self::drq(), Self::odq()]
    }

    /// PE silicon area in mm². Per-PE areas are *derived from Table 2*:
    /// the paper states all four accelerators fit the same 0.17 mm²
    /// budget, which pins the per-PE cost of each bit width (INT2 ≈
    /// 35 µm², INT4 ≈ 100 µm², INT16 ≈ 1417 µm²; INT8 interpolated
    /// geometrically). Note the scaling is *sub*-quadratic — real MAC
    /// units share accumulator/control logic.
    pub fn pe_area_mm2(&self) -> f64 {
        let per_pe = match self.pe_bits {
            2 => 0.17 / 4860.0,
            4 => 0.17 / 1692.0,
            8 => 0.17 / 617.0, // geometric mean of the INT4/INT16 densities
            _ => 0.17 / 120.0,
        };
        self.total_pes as f64 * per_pe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_pe_counts_match_paper() {
        let t = AccelConfig::table2();
        let pes: Vec<usize> = t.iter().map(|c| c.total_pes).collect();
        assert_eq!(pes, vec![120, 1692, 1692, 4860]);
        let bits: Vec<u8> = t.iter().map(|c| c.pe_bits).collect();
        assert_eq!(bits, vec![16, 4, 4, 2]);
    }

    #[test]
    fn all_configs_share_onchip_memory() {
        for c in AccelConfig::table2() {
            assert_eq!(c.onchip_bytes, (0.17 * 1024.0 * 1024.0) as usize, "{}", c.name);
        }
    }

    #[test]
    fn odq_array_arithmetic() {
        assert_eq!(ARRAYS_PER_SLICE * PES_PER_ARRAY, 4860);
        assert_eq!(
            FIXED_PREDICTOR_ARRAYS + FIXED_EXECUTOR_ARRAYS + RECONFIGURABLE_ARRAYS,
            ARRAYS_PER_SLICE
        );
    }

    #[test]
    fn areas_within_common_budget() {
        // Same-area comparison (Sec. 5.2): every config's PE area should be
        // within a modest tolerance of the 0.17 mm² budget.
        for c in AccelConfig::table2() {
            let a = c.pe_area_mm2();
            assert!((a - 0.17).abs() / 0.17 < 0.01, "{}: area {a:.4} mm² off budget", c.name);
        }
    }

    #[test]
    fn odq_static_bounds() {
        let c = AccelConfig::odq_static(15).unwrap();
        match c.kind {
            AccelKind::Odq { dynamic_alloc, static_predictor_arrays } => {
                assert!(!dynamic_alloc);
                assert_eq!(static_predictor_arrays, 15);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn odq_static_rejects_out_of_range() {
        let e = AccelConfig::odq_static(25).unwrap_err();
        assert!(e.to_string().contains("9..=21"), "{e}");
        assert!(AccelConfig::odq_static(8).is_err());
        assert!(AccelConfig::odq_static(9).is_ok());
        assert!(AccelConfig::odq_static(21).is_ok());
    }
}
