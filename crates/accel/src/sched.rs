//! Executor-side workload scheduling across PE arrays (Sec. 4.3,
//! Figs. 14–16).
//!
//! The executor's PE arrays process *sensitive output features*, 3 cycles
//! each. Output feature maps (OFMs) carry very different numbers of
//! sensitive features, so a **static** OFM→array assignment leaves arrays
//! idle (Fig. 14: 21 cycles, arrays idle for 9), while the **dynamic**
//! scheme — each array owns several output channels, a crossbar feeds it
//! the owned channel with the greatest remaining workload, and cluster
//! ownership jointly covers all channels — balances the load (Fig. 15/16:
//! 15 cycles, no waste).

use serde::Serialize;

/// Cycles one sensitive output occupies an executor PE array
/// (the three remaining Eq. 3 cross terms on a multi-precision PE).
pub const CYCLES_PER_SENSITIVE_OUTPUT: u64 = 3;

/// Result of scheduling one layer's executor workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ScheduleResult {
    /// Total cycles until the last array finishes.
    pub makespan: u64,
    /// Sum over arrays of cycles spent idle before the makespan.
    pub idle_cycles: u64,
    /// Total busy cycles (work actually executed).
    pub busy_cycles: u64,
}

impl ScheduleResult {
    /// Idle fraction of executor array-cycles.
    pub fn idle_fraction(&self) -> f64 {
        let denom = (self.busy_cycles + self.idle_cycles).max(1);
        self.idle_cycles as f64 / denom as f64
    }
}

/// Static schedule: OFM queues are assigned to arrays round-robin and
/// never move (Fig. 14). `workloads[i]` = sensitive-output count of OFM
/// `i`.
pub fn schedule_static(workloads: &[u32], n_arrays: usize) -> ScheduleResult {
    assert!(n_arrays > 0, "need at least one array");
    let mut per_array = vec![0u64; n_arrays];
    for (i, &w) in workloads.iter().enumerate() {
        per_array[i % n_arrays] += w as u64 * CYCLES_PER_SENSITIVE_OUTPUT;
    }
    finish(&per_array)
}

/// Static schedule with an explicit OFM→array assignment (used to
/// reproduce the paper's Fig. 14 walkthrough exactly).
pub fn schedule_static_assigned(
    workloads: &[u32],
    assignment: &[usize],
    n_arrays: usize,
) -> ScheduleResult {
    assert_eq!(workloads.len(), assignment.len(), "assignment length mismatch");
    let mut per_array = vec![0u64; n_arrays];
    for (&w, &a) in workloads.iter().zip(assignment) {
        assert!(a < n_arrays, "array index out of range");
        per_array[a] += w as u64 * CYCLES_PER_SENSITIVE_OUTPUT;
    }
    finish(&per_array)
}

/// Dynamic schedule (Figs. 15/16): arrays draw one output at a time from
/// the remaining-workload-richest output channel they can reach. With the
/// paper's combination scheme the clusters jointly cover every channel,
/// so we model reachability as full coverage: at each 3-cycle slot every
/// free array takes one output from the globally largest remaining queue.
pub fn schedule_dynamic(workloads: &[u32], n_arrays: usize) -> ScheduleResult {
    assert!(n_arrays > 0, "need at least one array");
    let mut queues: Vec<u64> = workloads.iter().map(|&w| w as u64).collect();
    let mut per_array = vec![0u64; n_arrays];
    let mut remaining: u64 = queues.iter().sum();

    // Greedy longest-queue-first, one output per array per slot. Arrays
    // are offered work in order of least accumulated busy time, which is
    // what "free array gets the crossbar grant" amounts to.
    while remaining > 0 {
        // Order arrays by current finish time (earliest-free first).
        let mut order: Vec<usize> = (0..n_arrays).collect();
        order.sort_by_key(|&i| per_array[i]);
        let mut progressed = false;
        for &a in &order {
            // pick the largest remaining queue
            if let Some((qi, _)) =
                queues.iter().enumerate().filter(|(_, &q)| q > 0).max_by_key(|(_, &q)| q)
            {
                queues[qi] -= 1;
                remaining -= 1;
                per_array[a] += CYCLES_PER_SENSITIVE_OUTPUT;
                progressed = true;
            } else {
                break;
            }
        }
        debug_assert!(progressed || remaining == 0);
        if !progressed {
            break;
        }
    }
    finish(&per_array)
}

fn finish(per_array: &[u64]) -> ScheduleResult {
    let makespan = per_array.iter().copied().max().unwrap_or(0);
    let busy: u64 = per_array.iter().sum();
    let idle: u64 = per_array.iter().map(|&b| makespan - b).sum();
    ScheduleResult { makespan, idle_cycles: idle, busy_cycles: busy }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 14 → Fig. 16 walkthrough: four OFMs with workloads
    /// such that static scheduling takes 21 cycles with 9-cycle stalls on
    /// four arrays, while dynamic scheduling finishes in 15 cycles.
    #[test]
    fn paper_walkthrough_fig14_to_fig16() {
        // Six queues (OFM1 and OFM2 split in half across clusters per the
        // figure): arrays 0 and 4 get 7 outputs, the rest get 4.
        let queues = [7u32, 4, 4, 4, 7, 4];
        let assignment = [0usize, 1, 2, 3, 4, 5];
        let st = schedule_static_assigned(&queues, &assignment, 6);
        assert_eq!(st.makespan, 21, "static: two arrays need 7×3 cycles");
        // Arrays 1,2,3,5 idle 9 cycles each (Fig. 14).
        assert_eq!(st.idle_cycles, 4 * 9);

        let dy = schedule_dynamic(&queues, 6);
        assert_eq!(dy.makespan, 15, "dynamic: 30 outputs over 6 arrays = 5 each × 3 cycles");
        assert_eq!(dy.idle_cycles, 0);
        // Same total work either way.
        assert_eq!(dy.busy_cycles, st.busy_cycles);
    }

    #[test]
    fn empty_workload() {
        let r = schedule_dynamic(&[], 4);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.busy_cycles, 0);
        let r = schedule_static(&[0, 0], 2);
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn dynamic_never_worse_than_static() {
        // Pseudo-random workloads.
        for seed in 0..20u64 {
            let n_ofm = 4 + (seed % 7) as usize;
            let n_arrays = 3 + (seed % 4) as usize;
            let workloads: Vec<u32> =
                (0..n_ofm).map(|i| ((seed * 31 + i as u64 * 17) % 23) as u32).collect();
            let st = schedule_static(&workloads, n_arrays);
            let dy = schedule_dynamic(&workloads, n_arrays);
            assert!(
                dy.makespan <= st.makespan,
                "seed {seed}: dynamic {} > static {}",
                dy.makespan,
                st.makespan
            );
            assert_eq!(dy.busy_cycles, st.busy_cycles, "work is conserved");
        }
    }

    #[test]
    fn dynamic_is_near_optimal() {
        // Makespan within one slot of the lower bound ceil(total/arrays)*3.
        let workloads = [13u32, 2, 9, 4, 4, 1, 7];
        let n = 5;
        let dy = schedule_dynamic(&workloads, n);
        let total: u64 = workloads.iter().map(|&w| w as u64).sum();
        let lower = total.div_ceil(n as u64) * CYCLES_PER_SENSITIVE_OUTPUT;
        assert!(dy.makespan >= lower);
        assert!(dy.makespan <= lower + CYCLES_PER_SENSITIVE_OUTPUT);
    }

    #[test]
    fn idle_fraction_bounds() {
        let r = schedule_static(&[10, 0, 0], 3);
        let f = r.idle_fraction();
        assert!((0.0..1.0).contains(&f));
        assert!(f > 0.5, "two of three arrays fully idle");
    }
}
