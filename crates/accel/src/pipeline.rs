//! Event-driven (time-stepped) simulation of the ODQ accelerator's
//! execution workflow (Fig. 17).
//!
//! The analytical model in [`crate::sim`] computes per-layer makespans from
//! closed-form throughput; this module instead walks the pipeline the way
//! the paper's Fig. 17 describes it, at OFM granularity:
//!
//! * the **predictor** processes output feature maps (OFMs) in waves sized
//!   by its current PE-array allocation, pushing finished OFMs (partial
//!   sums + bit mask) into the **output buffer**;
//! * the **executor** drains the buffer, spending
//!   `3 · col_len · sensitive_count / (arrays × PEs)` array-cycles per OFM;
//! * the controller watches the buffer's occupancy against its target
//!   backlog (the paper keeps ~21 OFMs queued) and **reconfigures** the 12
//!   flexible arrays between waves when the measured sensitive fraction
//!   moves to a different Table 1 band;
//! * a reconfiguration costs a small pipeline flush.
//!
//! The event-driven and analytical models are cross-validated in the tests
//! (they must agree within a few percent on steady-state layers — the
//! event model additionally exposes fill/drain transients and
//! reconfiguration stalls, which the analytical model ignores).

use serde::Serialize;

use crate::alloc::{choose_allocation, Allocation};
use crate::config::{ARRAYS_PER_SLICE, PES_PER_ARRAY};
use crate::sched::CYCLES_PER_SENSITIVE_OUTPUT;
use crate::workload::LayerWorkload;

/// Cycles lost when the reconfigurable arrays switch roles (register
/// reload + crossbar reprogram; small compared to any layer).
pub const RECONFIG_FLUSH_CYCLES: u64 = 64;

/// Target number of predicted OFMs kept waiting in the output buffer
/// ("we strive to keep the number of OFMs waiting … equal to 21", Fig. 17).
pub const TARGET_BACKLOG_OFMS: usize = 21;

/// Per-layer result of the event-driven simulation.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineLayerResult {
    /// Layer name.
    pub name: String,
    /// Total cycles from first predictor wave to executor drain.
    pub cycles: u64,
    /// Number of reconfigurations performed within the layer.
    pub reconfigurations: u32,
    /// Cycle-weighted mean predictor allocation.
    pub mean_predictor_arrays: f64,
    /// Peak output-buffer occupancy (OFMs).
    pub peak_backlog: usize,
    /// Busy fraction of all PE arrays over the layer's makespan.
    pub utilization: f64,
}

/// Whole-network result.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineResult {
    /// Per-layer results.
    pub layers: Vec<PipelineLayerResult>,
    /// Total cycles.
    pub total_cycles: u64,
    /// Total reconfigurations.
    pub reconfigurations: u32,
}

/// Simulate one layer through the Fig. 17 pipeline, starting from the
/// Fig. 17 initial state (all 12 flexible arrays predicting).
pub fn simulate_layer_pipeline(w: &LayerWorkload) -> PipelineLayerResult {
    simulate_layer_pipeline_from(w, Allocation::new(21, 6)).0
}

/// Simulate one layer starting from a given PE-array allocation (the
/// controller keeps its allocation across layer boundaries; only the very
/// first layer starts with all flexible arrays predicting). Returns the
/// result and the allocation in force at the end of the layer.
///
/// OFM-level granularity, faithful to the weight-stationary dataflow: each
/// predictor array holds one filter and computes that whole OFM
/// (`col_len × spatial` INT2 MACs); the executor owes
/// `3 × col_len × sensitive_count` plane-MACs per predicted OFM.
pub fn simulate_layer_pipeline_from(
    w: &LayerWorkload,
    initial: Allocation,
) -> (PipelineLayerResult, Allocation) {
    let geom = w.geom.geom();
    let spatial = geom.out_spatial() as u64;
    let col_len = geom.col_len() as u64;
    let co = geom.out_channels;

    // Per-OFM work in PE-cycles.
    let pred_work_per_ofm = col_len * spatial;
    let counts = w.effective_channel_counts();
    let exec_work: Vec<u64> = (0..co)
        .map(|f| {
            let sens = *counts.get(f).unwrap_or(&0) as u64;
            CYCLES_PER_SENSITIVE_OUTPUT * col_len * sens
        })
        .collect();

    // Fig. 17: the first layer starts with all 12 reconfigurable arrays
    // predicting; later layers inherit the controller's last allocation.
    let mut alloc = initial;
    let mut cycles: u64 = 0;
    let mut reconfigs: u32 = 0;
    let mut busy_array_cycles: f64 = 0.0;
    let mut alloc_weighted: f64 = 0.0;
    let mut peak_backlog = 0usize;

    // Queues. The backlog holds the *remaining* executor work of each
    // predicted-but-unfinished OFM, in prediction order.
    let mut next_ofm = 0usize; // next OFM the predictor will take
    let mut backlog: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut exec_debt: u64 = 0; // total executor array-cycles still owed
    let mut seen_sensitive: u64 = 0;
    let mut seen_outputs: u64 = 0;

    while next_ofm < co || exec_debt > 0 {
        // --- Launch one predictor wave ---
        let wave: usize = alloc.predictor_arrays.min(co - next_ofm.min(co));
        let wave_ofms: Vec<usize> = (next_ofm..next_ofm + wave).collect();
        next_ofm += wave;

        // Wave duration: each array processes one OFM; they all take the
        // same time (dense work).
        let pred_cycles =
            if wave > 0 { pred_work_per_ofm.div_ceil(PES_PER_ARRAY as u64) } else { 0 };

        // Executor progress during the wave: consume backlog entries from
        // the front as their work retires.
        let exec_capacity = (alloc.executor_arrays * PES_PER_ARRAY) as u64 * pred_cycles.max(1);
        let mut budget = exec_capacity.min(exec_debt);
        exec_debt -= budget;
        while budget > 0 {
            match backlog.front_mut() {
                Some(rem) if *rem <= budget => {
                    budget -= *rem;
                    backlog.pop_front();
                }
                Some(rem) => {
                    *rem -= budget;
                    budget = 0;
                }
                None => break,
            }
        }
        let exec_done = exec_capacity.min(exec_capacity - budget).min(exec_capacity);

        // Account cycles & utilization for the wave.
        let step = pred_cycles.max(if exec_debt > 0 { 1 } else { 0 }).max(1);
        cycles += step;
        busy_array_cycles +=
            (wave as f64) * pred_cycles as f64 + (exec_done as f64 / PES_PER_ARRAY as f64);
        alloc_weighted += alloc.predictor_arrays as f64 * step as f64;

        // New predictions join the backlog.
        for &f in &wave_ofms {
            seen_sensitive += *counts.get(f).unwrap_or(&0) as u64;
            seen_outputs += spatial;
            exec_debt += exec_work[f];
            if exec_work[f] > 0 {
                backlog.push_back(exec_work[f]);
            }
        }
        peak_backlog = peak_backlog.max(backlog.len());

        // --- Reconfigure between waves if the measured fraction moved ---
        if seen_outputs > 0 {
            let s = seen_sensitive as f64 / seen_outputs as f64;
            let want = choose_allocation(s);
            // Hysteresis: also shift toward the executor when the backlog
            // exceeds its target (the paper's "keep 21 OFMs queued" rule).
            let want = if backlog.len() > TARGET_BACKLOG_OFMS && want.predictor_arrays > 9 {
                Allocation::new(want.predictor_arrays - 3, want.executor_arrays + 3)
            } else {
                want
            };
            if want != alloc {
                alloc = want;
                reconfigs += 1;
                cycles += RECONFIG_FLUSH_CYCLES;
            }
        }

        // Predictor finished every OFM: let the executor drain at full rate.
        if next_ofm >= co && exec_debt > 0 {
            let drain = exec_debt.div_ceil((alloc.executor_arrays * PES_PER_ARRAY) as u64);
            cycles += drain;
            busy_array_cycles += exec_debt as f64 / PES_PER_ARRAY as f64;
            alloc_weighted += alloc.predictor_arrays as f64 * drain as f64;
            exec_debt = 0;
            backlog.clear();
        }
        debug_assert_eq!(
            exec_debt,
            backlog.iter().sum::<u64>(),
            "backlog must mirror outstanding executor debt"
        );
    }

    let utilization = if cycles > 0 {
        (busy_array_cycles / (ARRAYS_PER_SLICE as f64 * cycles as f64)).min(1.0)
    } else {
        0.0
    };
    (
        PipelineLayerResult {
            name: w.name.clone(),
            cycles,
            reconfigurations: reconfigs,
            mean_predictor_arrays: if cycles > 0 { alloc_weighted / cycles as f64 } else { 0.0 },
            peak_backlog,
            utilization,
        },
        alloc,
    )
}

/// Simulate a whole network through the pipeline, threading the PE-array
/// allocation across layer boundaries (the controller does not reset).
pub fn simulate_network_pipeline(layers: &[LayerWorkload]) -> PipelineResult {
    let mut alloc = Allocation::new(21, 6);
    let mut per = Vec::with_capacity(layers.len());
    for w in layers {
        let (r, a) = simulate_layer_pipeline_from(w, alloc);
        alloc = a;
        per.push(r);
    }
    let total = per.iter().map(|l| l.cycles).sum();
    let reconfigs = per.iter().map(|l| l.reconfigurations).sum();
    PipelineResult { layers: per, total_cycles: total, reconfigurations: reconfigs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use crate::sim::simulate_layer;
    use odq_tensor::ConvGeom;

    fn layer(s: f64) -> LayerWorkload {
        LayerWorkload::uniform("L", ConvGeom::new(32, 64, 16, 16, 3, 1, 1), s)
    }

    #[test]
    fn pipeline_agrees_with_analytical_model_at_steady_state() {
        // For a uniform-sensitivity layer, the event-driven makespan must
        // track the analytical model within modest overhead (fill/drain +
        // reconfiguration transients).
        for s in [0.05f64, 0.15, 0.3, 0.5] {
            let w = layer(s);
            let event = simulate_layer_pipeline(&w);
            let analytic = simulate_layer(&AccelConfig::odq(), &w);
            let ratio = event.cycles as f64 / analytic.compute_cycles.max(1.0);
            assert!(
                (0.8..1.6).contains(&ratio),
                "s={s}: event {} vs analytic {} (ratio {ratio:.2})",
                event.cycles,
                analytic.compute_cycles
            );
        }
    }

    #[test]
    fn starts_with_all_flexible_arrays_predicting() {
        // Fig. 17: the first wave uses 21 predictor arrays; a 21-OFM layer
        // is fully predicted in that single wave, and the end-of-layer
        // reconfiguration (for the next layer) is at most one.
        let tiny = LayerWorkload::uniform("t", ConvGeom::new(8, 21, 8, 8, 3, 1, 1), 0.3);
        let rt = simulate_layer_pipeline(&tiny);
        assert!(rt.reconfigurations <= 1, "single wave: at most the exit reconfig");
        let r = simulate_layer_pipeline(&layer(0.3));
        assert!(r.mean_predictor_arrays <= 21.0);
    }

    #[test]
    fn allocation_threads_across_layers() {
        // With allocation carried over, a steady-sensitivity network
        // reconfigures once overall, and later layers run at the adapted
        // allocation rather than resetting to 21 predictors.
        let ws = vec![layer(0.3), layer(0.3), layer(0.3)];
        let r = simulate_network_pipeline(&ws);
        // Settles quickly: a handful of reconfigurations (the backlog
        // hysteresis may toggle once around the steady allocation), far
        // fewer than one per wave.
        assert!(r.reconfigurations <= 4, "got {}", r.reconfigurations);
        assert!(
            r.layers[2].mean_predictor_arrays < 18.0,
            "later layers should run at the adapted allocation: {}",
            r.layers[2].mean_predictor_arrays
        );
    }

    #[test]
    fn reconfigures_when_sensitivity_demands_it() {
        // A high-sensitivity layer must shift arrays toward the executor.
        let w = layer(0.5);
        let r = simulate_layer_pipeline(&w);
        assert!(r.reconfigurations >= 1, "expected at least one reconfiguration");
        assert!(
            r.mean_predictor_arrays < 20.0,
            "mean predictor arrays {} should drop below the initial 21",
            r.mean_predictor_arrays
        );
    }

    #[test]
    fn low_sensitivity_keeps_predictor_heavy_allocation() {
        let lo = simulate_layer_pipeline(&layer(0.05));
        let hi = simulate_layer_pipeline(&layer(0.55));
        assert!(
            lo.mean_predictor_arrays > hi.mean_predictor_arrays,
            "lo {} vs hi {}",
            lo.mean_predictor_arrays,
            hi.mean_predictor_arrays
        );
        assert!(lo.cycles < hi.cycles, "less sensitive work should finish sooner");
    }

    #[test]
    fn utilization_reasonable() {
        for s in [0.1, 0.3, 0.5] {
            let r = simulate_layer_pipeline(&layer(s));
            assert!((0.3..=1.0).contains(&r.utilization), "s={s}: utilization {}", r.utilization);
        }
    }

    #[test]
    fn network_accumulates_layers() {
        let ws = vec![layer(0.1), layer(0.3), layer(0.5)];
        let r = simulate_network_pipeline(&ws);
        assert_eq!(r.layers.len(), 3);
        assert_eq!(r.total_cycles, r.layers.iter().map(|l| l.cycles).sum::<u64>());
    }

    #[test]
    fn zero_sensitivity_layer_is_predictor_bound() {
        let r = simulate_layer_pipeline(&layer(0.0));
        assert!(r.cycles > 0);
        // Executor has nothing to do; utilization is bounded by the
        // predictor share of arrays.
        assert!(r.utilization <= 22.0 / 27.0 + 0.05);
    }
}
