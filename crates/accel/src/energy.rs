//! CACTI-style energy model (45 nm-class constants).
//!
//! The paper measures power with CACTI \[14] on a 45 nm library; we use
//! representative per-operation energies from the same technology class
//! (Horowitz-style numbers). Absolute joules are *not* the claim — the
//! experiments (Fig. 21) compare normalized energy, which depends only on
//! the ratios, and those are set by bit widths and access counts.

use serde::Serialize;

/// Per-operation energy constants.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EnergyModel {
    /// Energy of one INT8 MAC in pJ; other widths scale quadratically
    /// (multiplier area/energy ∝ bits²).
    pub mac_pj_int8: f64,
    /// On-chip SRAM access energy per byte (pJ/B).
    pub sram_pj_per_byte: f64,
    /// Off-chip DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// Static (leakage + clock) power of the whole accelerator in mW.
    /// All Table 2 configs occupy the same area (same PE budget, same
    /// 0.17 MB buffer), so static power is configuration-independent;
    /// static *energy* then scales with execution time, which is exactly
    /// how the paper attributes its static-energy savings (Sec. 6.3).
    pub static_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self { mac_pj_int8: 0.2, sram_pj_per_byte: 1.2, dram_pj_per_byte: 20.0, static_mw: 150.0 }
    }
}

impl EnergyModel {
    /// Energy of one MAC at the given operand width, in pJ.
    pub fn mac_pj(&self, bits: u8) -> f64 {
        self.mac_pj_int8 * (bits as f64 / 8.0).powi(2)
    }

    /// Full energy accounting for one run.
    ///
    /// * `macs_by_bits` — `(operand_bits, count)` pairs;
    /// * `sram_bytes` / `dram_bytes` — access volumes;
    /// * `time_s` — execution time (for static energy).
    pub fn breakdown(
        &self,
        macs_by_bits: &[(u8, u64)],
        sram_bytes: f64,
        dram_bytes: f64,
        time_s: f64,
    ) -> EnergyBreakdown {
        let mac_pj: f64 = macs_by_bits.iter().map(|&(b, n)| self.mac_pj(b) * n as f64).sum();
        let static_w = self.static_mw * 1e-3;
        // Static energy charged to the cores bucket (PE leakage dominates).
        let cores_nj = mac_pj * 1e-3 + static_w * time_s * 1e9 * 0.7;
        let buffer_nj = sram_bytes * self.sram_pj_per_byte * 1e-3 + static_w * time_s * 1e9 * 0.3;
        let dram_nj = dram_bytes * self.dram_pj_per_byte * 1e-3;
        EnergyBreakdown { dram_nj, buffer_nj, cores_nj }
    }
}

/// Energy split into the paper's three components (Fig. 21).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM energy (nJ).
    pub dram_nj: f64,
    /// On-chip buffer energy (nJ), including its share of static power.
    pub buffer_nj: f64,
    /// PE-slice ("Cores") energy (nJ), including its share of static power.
    pub cores_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nJ.
    pub fn total_nj(&self) -> f64 {
        self.dram_nj + self.buffer_nj + self.cores_nj
    }

    /// Elementwise accumulation.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.dram_nj += other.dram_nj;
        self.buffer_nj += other.buffer_nj;
        self.cores_nj += other.cores_nj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_quadratically() {
        let m = EnergyModel::default();
        assert!((m.mac_pj(8) - 0.2).abs() < 1e-12);
        assert!((m.mac_pj(16) / m.mac_pj(8) - 4.0).abs() < 1e-9);
        assert!((m.mac_pj(4) / m.mac_pj(2) - 4.0).abs() < 1e-9);
        assert!((m.mac_pj(8) / m.mac_pj(2) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_components() {
        let m = EnergyModel::default();
        let b = m.breakdown(&[(8, 1_000_000)], 1e6, 1e5, 1e-6);
        assert!(b.dram_nj > 0.0 && b.buffer_nj > 0.0 && b.cores_nj > 0.0);
        assert!((b.total_nj() - (b.dram_nj + b.buffer_nj + b.cores_nj)).abs() < 1e-9);
    }

    #[test]
    fn lower_bitwidth_costs_less_compute_energy() {
        let m = EnergyModel::default();
        let hi = m.breakdown(&[(16, 1_000_000)], 0.0, 0.0, 0.0);
        let lo = m.breakdown(&[(2, 1_000_000)], 0.0, 0.0, 0.0);
        assert!(lo.cores_nj < hi.cores_nj / 30.0);
    }

    #[test]
    fn longer_time_more_static_energy() {
        let m = EnergyModel::default();
        let short = m.breakdown(&[], 0.0, 0.0, 1e-6);
        let long = m.breakdown(&[], 0.0, 0.0, 1e-3);
        assert!(long.total_nj() > 100.0 * short.total_nj());
    }

    #[test]
    fn accumulation() {
        let mut a = EnergyBreakdown { dram_nj: 1.0, buffer_nj: 2.0, cores_nj: 3.0 };
        a.add(&EnergyBreakdown { dram_nj: 0.5, buffer_nj: 0.5, cores_nj: 0.5 });
        assert!((a.total_nj() - 7.5).abs() < 1e-12);
    }
}
