//! A fault-injecting TCP proxy for the ODQ1 wire.
//!
//! [`FaultyTransport`] sits between a [`crate::NetClient`] and a
//! [`crate::NetServer`] and sabotages the client→server byte stream
//! according to a per-connection [`ConnFault`] plan, chosen by accept
//! order — so a seeded chaos schedule that decides "connection 3 gets a
//! corrupted header byte" replays exactly. The server→client direction is
//! relayed untouched: the faults model a hostile or lossy *client side*,
//! and the server's responses to surviving requests must still arrive
//! bit-exact.
//!
//! Fault taxonomy (all client→server):
//!
//! * [`ConnFault::Pass`] — transparent relay (the control case).
//! * [`ConnFault::CloseOnAccept`] — the connection dies before a byte
//!   flows: the server must recycle its slot, the client's waiters must
//!   resolve to the typed dead-connection error.
//! * [`ConnFault::TruncateAfter`] — the stream is cut mid-frame after N
//!   bytes: the server sees EOF inside a frame and must reject without
//!   leaking its connection slot.
//! * [`ConnFault::CorruptHeaderByte`] — one byte inside the *first
//!   frame's 9-byte header* is XOR-flipped. Restricting corruption to
//!   the header is deliberate: a flipped header can only produce a typed
//!   decode failure (bad magic, bad kind, implausible length) and a
//!   connection-fatal error frame — never a silently *different* valid
//!   request, which would corrupt the chaos harness's oracle invariant
//!   instead of exercising the error path.
//! * [`ConnFault::StallAt`] — the relay sleeps once when byte offset N
//!   crosses, modeling a client that wedges mid-frame; deadline and
//!   drain behavior downstream must cope.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire header length the corruption fault may target (see
/// [`crate::wire`]: 4 magic bytes, 1 kind byte, 4 length bytes).
pub const HEADER_LEN: usize = 9;

/// One connection's sabotage plan (client→server direction only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Relay both directions untouched.
    Pass,
    /// Close both sides immediately on accept, before any byte flows.
    CloseOnAccept,
    /// Forward exactly `0` extra bytes after the first `n`, then close
    /// both sides abruptly (cut mid-frame when `n` lands inside one).
    TruncateAfter(usize),
    /// XOR one byte of the first frame's header with `mask` (`offset <
    /// [`HEADER_LEN`]`, `mask != 0` — enforced at relay time by clamping
    /// the offset into the header and substituting mask 0 with 0xFF).
    CorruptHeaderByte {
        /// Byte offset into the stream, clamped to `0..HEADER_LEN`.
        offset: usize,
        /// XOR mask applied to that byte (0 is promoted to 0xFF).
        mask: u8,
    },
    /// Sleep `millis` once when stream offset `at` is reached, then keep
    /// relaying normally (a mid-frame write stall, not a disconnect).
    StallAt {
        /// Byte offset at which the relay pauses.
        at: usize,
        /// Pause length in milliseconds.
        millis: u64,
    },
}

/// A listening TCP proxy that applies one [`ConnFault`] per accepted
/// connection, in accept order (connections beyond the plan get
/// [`ConnFault::Pass`]).
pub struct FaultyTransport {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    /// Every stream the proxy ever touched, so shutdown can hard-close
    /// relays that are blocked in `read`.
    streams: Arc<Mutex<Vec<TcpStream>>>,
    relays: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultyTransport {
    /// Start a proxy on an ephemeral local port forwarding to `upstream`.
    /// The `n`th accepted connection (0-based) gets `faults[n]`.
    pub fn bind(upstream: SocketAddr, faults: Vec<ConnFault>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let relays: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();

        let a_stop = Arc::clone(&stop);
        let a_streams = Arc::clone(&streams);
        let a_relays = Arc::clone(&relays);
        let accept = std::thread::Builder::new()
            .name("odq-chaos-proxy".into())
            .spawn(move || {
                for (accepted, conn) in listener.incoming().enumerate() {
                    if a_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { break };
                    let fault = faults.get(accepted).copied().unwrap_or(ConnFault::Pass);
                    if fault == ConnFault::CloseOnAccept {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    client.set_nodelay(true).ok();
                    server.set_nodelay(true).ok();
                    let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                        continue;
                    };
                    {
                        let mut st = a_streams.lock().unwrap_or_else(|p| p.into_inner());
                        st.push(client.try_clone().expect("clone for registry"));
                        st.push(server.try_clone().expect("clone for registry"));
                    }
                    let up = std::thread::Builder::new()
                        .name("odq-chaos-proxy-up".into())
                        .spawn(move || relay(client, server, fault))
                        .expect("spawn relay");
                    let down = std::thread::Builder::new()
                        .name("odq-chaos-proxy-down".into())
                        .spawn(move || relay(s2, c2, ConnFault::Pass))
                        .expect("spawn relay");
                    let mut r = a_relays.lock().unwrap_or_else(|p| p.into_inner());
                    r.push(up);
                    r.push(down);
                }
            })
            .expect("spawn proxy accept loop");

        Ok(Self { addr, stop, accept: Some(accept), streams, relays })
    }

    /// The proxy's listening address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, hard-close every relayed stream, join all relay
    /// threads. Idempotent via `Drop`.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for s in self.streams.lock().unwrap_or_else(|p| p.into_inner()).drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        let relays: Vec<_> =
            self.relays.lock().unwrap_or_else(|p| p.into_inner()).drain(..).collect();
        for r in relays {
            let _ = r.join();
        }
    }
}

impl Drop for FaultyTransport {
    fn drop(&mut self) {
        self.close();
    }
}

/// Pump bytes `from` → `to`, applying `fault` by stream offset. On EOF or
/// error, propagate the half-close so the peer sees EOF rather than a
/// wedge.
fn relay(mut from: TcpStream, mut to: TcpStream, fault: ConnFault) {
    let mut buf = [0u8; 4096];
    let mut offset = 0usize; // Bytes already forwarded.
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        match fault {
            ConnFault::Pass | ConnFault::CloseOnAccept => {}
            ConnFault::CorruptHeaderByte { offset: o, mask } => {
                let o = o.min(HEADER_LEN - 1);
                if (offset..offset + n).contains(&o) {
                    let mask = if mask == 0 { 0xFF } else { mask };
                    chunk[o - offset] ^= mask;
                }
            }
            ConnFault::StallAt { at, millis } => {
                if (offset..offset + n).contains(&at) {
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
            ConnFault::TruncateAfter(limit) => {
                if offset + n > limit {
                    let keep = limit.saturating_sub(offset);
                    if keep > 0 && to.write_all(&chunk[..keep]).is_err() {
                        break;
                    }
                    // Abrupt cut: both directions die, mid-frame.
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        offset += n;
    }
    // Half-close forward: the destination sees EOF and can drain.
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// An echo upstream: whatever arrives goes straight back.
    fn echo_upstream() -> SocketAddr {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in l.incoming().take(4) {
                let Ok(mut c) = conn else { break };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 256];
                    while let Ok(n) = c.read(&mut buf) {
                        if n == 0 || c.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn pass_relays_bytes_both_ways() {
        let proxy = FaultyTransport::bind(echo_upstream(), vec![ConnFault::Pass]).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"ODQ1-hello").unwrap();
        let mut back = [0u8; 10];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ODQ1-hello");
        proxy.shutdown();
    }

    #[test]
    fn corrupt_header_flips_exactly_one_byte() {
        let proxy = FaultyTransport::bind(
            echo_upstream(),
            vec![ConnFault::CorruptHeaderByte { offset: 4, mask: 0x20 }],
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"ODQ1\x01AAAA").unwrap();
        let mut back = [0u8; 9];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ODQ1\x21AAAA", "kind byte XOR 0x20, everything else untouched");
        proxy.shutdown();
    }

    #[test]
    fn truncate_cuts_the_stream_mid_message() {
        let proxy =
            FaultyTransport::bind(echo_upstream(), vec![ConnFault::TruncateAfter(4)]).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"ODQ1-and-much-more").unwrap();
        let mut back = Vec::new();
        let _ = c.read_to_end(&mut back);
        assert!(back.len() <= 4, "at most 4 bytes may round-trip, got {}", back.len());
        proxy.shutdown();
    }

    #[test]
    fn close_on_accept_yields_an_immediately_dead_connection() {
        let proxy = FaultyTransport::bind(echo_upstream(), vec![ConnFault::CloseOnAccept]).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut back = Vec::new();
        let n = c.read_to_end(&mut back).unwrap_or(0);
        assert_eq!(n, 0, "no bytes ever flow");
        proxy.shutdown();
    }
}
