//! odq-net — a TCP wire front-end for `odq-serve`.
//!
//! The serving crate is transport-agnostic: everything enters through
//! [`odq_serve::Server::submit`]. This crate puts that server on a
//! socket with a small, hardened binary protocol:
//!
//! ```text
//!   NetClient ──ODQ1 frames──► NetServer ──submit──► odq_serve::Server
//!      ▲                          │ per-connection reader + writer
//!      └──────responses/errors────┘ (completion order, not arrival
//!                                    order: no head-of-line blocking)
//! ```
//!
//! * [`wire`] — the `ODQ1` length-prefixed frame codec: requests carry a
//!   caller id, model name, optional deadline, and a raw little-endian
//!   f32 tensor (bit-exact across the wire); responses echo the id with
//!   the output tensor and timing; failures travel as typed
//!   [`wire::WireErrorCode`]s covering every [`odq_serve::ServeError`]
//!   variant plus transport-level rejections. Decoding validates the
//!   declared length *before* allocating and never panics on hostile
//!   input.
//! * [`NetServer`] — accept loop with a connection cap, one reader and
//!   one writer thread per connection, typed error frames for admission
//!   rejections and protocol violations, graceful drain (stop accepting,
//!   answer everything in flight, then shut the inner server down).
//!   Connection, byte, and frame counters stream into the server's
//!   ledger ([`odq_serve::NetTap`]) and appear in
//!   [`odq_serve::Server::stats_json`] under `"net"`.
//! * [`NetClient`] — connects, implements [`odq_serve::LoadTarget`], and
//!   returns the same [`odq_serve::ResponseHandle`] the in-process
//!   server does, so the load generators and callers cannot tell local
//!   from remote.
//! * [`fault`] — a fault-injecting TCP proxy ([`FaultyTransport`]) that
//!   sabotages the client→server stream per a deterministic
//!   per-connection plan (truncation, header corruption, abrupt close,
//!   write stalls), the `odq-chaos` harness's network leg.

#![warn(missing_docs)]

pub mod fault;
pub mod wire;

mod client;
mod server;

pub use client::NetClient;
pub use fault::{ConnFault, FaultyTransport};
pub use server::{NetConfig, NetServer};
pub use wire::{WireError, WireErrorCode, WireLimits};
