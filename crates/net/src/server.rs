//! The TCP front-end: accept loop, per-connection threads, graceful drain.
//!
//! ```text
//!   accept thread ──► per-connection reader ──► Server::submit
//!        │                   │                        │ ResponseHandle
//!        │ (cap check,       ▼                        ▼
//!        │  drain flag)   event channel ──► per-connection writer
//!        │                                  (polls in-flight handles,
//!        │                                   writes completions in the
//!        ▼                                   order they FINISH — no
//!   connection registry                      head-of-line blocking)
//! ```
//!
//! Each accepted connection gets a **reader** thread (decodes `ODQ1`
//! frames, submits to the in-process [`Server`]) and a **writer** thread
//! (owns the write half; answers requests as their handles resolve, so a
//! slow request never delays a fast one submitted after it). Admission
//! rejections travel back as typed error frames; a malformed, truncated,
//! or oversized frame gets a typed error frame and closes the connection
//! (framing cannot be resynchronized after a parse failure), releasing
//! its connection slot.
//!
//! [`NetServer::shutdown`] drains gracefully: the accept loop stops, every
//! open connection's read side is shut down (no new requests), writers
//! answer everything still in flight, and only then is the inner server
//! shut down and the final ledger summary returned.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use odq_serve::{NetTap, ResponseHandle, Server, StatsSummary};

use crate::wire::{
    self, encode_error, encode_response, ErrorFrame, Frame, ResponseFrame, WireError,
    WireErrorCode, WireLimits, NO_REQUEST_ID,
};

/// Front-end tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Maximum simultaneously open connections. Connection number
    /// `max_connections + 1` is refused at accept time with a
    /// [`WireErrorCode::TooManyConnections`] error frame. Default 64.
    pub max_connections: usize,
    /// Decoder hardening limits applied to every inbound frame.
    pub limits: WireLimits,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { max_connections: 64, limits: WireLimits::default() }
    }
}

/// Poison-tolerant lock: connection threads must keep tearing down even
/// if a sibling panicked while holding a registry lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// What a connection's reader hands its writer.
enum Event {
    /// A submitted request whose handle will resolve later. The bool is
    /// whether the request carried `FLAG_TRACE` — only then does the
    /// response frame echo the trace id (v1 clients keep seeing v1
    /// response bodies).
    Inflight(u64, bool, ResponseHandle),
    /// A request rejected at admission: answer immediately.
    Reject(ErrorFrame),
    /// A connection-fatal protocol error: send it, finish the in-flight
    /// work, and close.
    Fatal(ErrorFrame),
}

struct Shared {
    server: Arc<Server>,
    tap: NetTap,
    limits: WireLimits,
    shutting_down: Arc<AtomicBool>,
    /// Read halves of live connections, keyed by connection id, so drain
    /// can shut each read side down (the reader then sees EOF).
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of live connection threads.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A TCP front-end wrapping an in-process [`Server`].
///
/// Owns the server: publish/deploy through [`server`](Self::server), and
/// recover the final [`StatsSummary`] (serving *and* transport counters)
/// from [`shutdown`](Self::shutdown).
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    done: bool,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start accepting
    /// connections for `server`.
    pub fn bind(server: Server, addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let tap = server.net_tap();
        let shared = Arc::new(Shared {
            server: Arc::new(server),
            tap,
            limits: cfg.limits,
            shutting_down: Arc::new(AtomicBool::new(false)),
            conns: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("odq-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, cfg.max_connections))
            .expect("spawn accept thread");
        Ok(Self { shared, addr, accept: Some(accept), done: false })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped server, for in-process control: publish, deploy,
    /// canary, stats — all while remote connections are live.
    pub fn server(&self) -> &Server {
        &self.shared.server
    }

    /// Graceful drain: stop accepting, shut down every connection's read
    /// side (no new requests), let writers answer everything still in
    /// flight, join all connection threads, then shut the inner server
    /// down and return its final summary.
    pub fn shutdown(mut self) -> StatsSummary {
        self.drain();
        self.done = true;
        // Every connection thread and the accept loop are joined, so
        // their `Arc<Shared>` clones are gone; after dropping `self`
        // (drain is already done and idempotent) the clone below is the
        // last owner and both unwraps succeed.
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(sh) => match Arc::try_unwrap(sh.server) {
                Ok(server) => server.shutdown(),
                Err(arc) => {
                    // Unreachable in practice (all threads joined); fall
                    // back to a snapshot + drop-driven shutdown.
                    let sum = arc.stats();
                    drop(arc);
                    sum
                }
            },
            Err(shared) => {
                let sum = shared.server.stats();
                drop(shared);
                sum
            }
        }
    }

    fn drain(&mut self) {
        if self.done {
            return;
        }
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept thread out of its blocking accept() with a
        // throwaway local connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        // No new connections can register now. Shut down every live read
        // side: readers see EOF, writers answer the remaining in-flight
        // requests, connection threads exit.
        for stream in lock(&self.shared.conns).values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let threads: Vec<JoinHandle<()>> = lock(&self.shared.threads).drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, max_connections: usize) {
    let conn_seq = AtomicU64::new(0);
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The drain wake-up, or a straggler racing it: refuse.
            let frame = encode_error(&ErrorFrame {
                id: NO_REQUEST_ID,
                code: WireErrorCode::ShuttingDown,
                message: "server is draining".into(),
            });
            let _ = wire::write_frame(&mut &stream, &frame);
            break;
        }
        // Reap finished connection threads so the registry does not grow
        // with connection churn (their map entries are already gone).
        lock(&shared.threads).retain(|t| !t.is_finished());

        let conn_id = conn_seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut conns = lock(&shared.conns);
            if conns.len() >= max_connections {
                drop(conns);
                shared.tap.conn_rejected();
                let frame = encode_error(&ErrorFrame {
                    id: NO_REQUEST_ID,
                    code: WireErrorCode::TooManyConnections,
                    message: format!("connection cap of {max_connections} reached"),
                });
                let _ = wire::write_frame(&mut &stream, &frame);
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let registered = match stream.try_clone() {
                Ok(c) => c,
                Err(_) => continue,
            };
            conns.insert(conn_id, registered);
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("odq-net-conn-{conn_id}"))
            .spawn(move || handle_connection(conn_id, stream, conn_shared));
        match spawned {
            Ok(handle) => lock(&shared.threads).push(handle),
            Err(_) => {
                lock(&shared.conns).remove(&conn_id);
            }
        }
    }
}

fn handle_connection(conn_id: u64, stream: TcpStream, shared: Arc<Shared>) {
    shared.tap.conn_opened();
    let writer = stream.try_clone();
    let (ev_tx, ev_rx) = unbounded::<Event>();
    let writer_thread = writer.ok().and_then(|w| {
        let tap = shared.tap.clone();
        std::thread::Builder::new()
            .name(format!("odq-net-write-{conn_id}"))
            .spawn(move || writer_loop(w, ev_rx, tap))
            .ok()
    });
    if writer_thread.is_some() {
        reader_loop(&stream, &shared, &ev_tx);
    }
    // Dropping the event sender lets the writer finish the in-flight
    // requests and exit; only then is the connection accounted closed.
    drop(ev_tx);
    if let Some(w) = writer_thread {
        let _ = w.join();
    }
    let _ = stream.shutdown(Shutdown::Both);
    lock(&shared.conns).remove(&conn_id);
    shared.tap.conn_closed();
}

fn reader_loop(stream: &TcpStream, shared: &Shared, ev_tx: &Sender<Event>) {
    let mut reader = BufReader::new(stream);
    loop {
        match wire::read_frame(&mut reader, &shared.limits) {
            Ok((Frame::Request(rf), n)) => {
                shared.tap.frame_in(n as u64);
                let id = rf.id;
                let echo_trace = rf.trace.is_some();
                let ev = match shared.server.submit(rf.into_request()) {
                    Ok(handle) => Event::Inflight(id, echo_trace, handle),
                    Err(e) => Event::Reject(ErrorFrame {
                        id,
                        code: WireErrorCode::from_serve_error(&e),
                        message: e.to_string(),
                    }),
                };
                if ev_tx.send(ev).is_err() {
                    return;
                }
            }
            Ok((_, n)) => {
                // Clients have no business sending Response/Error frames.
                shared.tap.frame_in(n as u64);
                shared.tap.protocol_error();
                let _ = ev_tx.send(Event::Fatal(ErrorFrame {
                    id: NO_REQUEST_ID,
                    code: WireErrorCode::Malformed,
                    message: "unexpected frame kind from client".into(),
                }));
                return;
            }
            // EOF (clean close or drain) and transport failures end the
            // connection quietly.
            Err(WireError::Io(_)) => return,
            Err(e) => {
                shared.tap.protocol_error();
                let code = match &e {
                    WireError::TooLarge { .. } => WireErrorCode::TooLarge,
                    _ => WireErrorCode::Malformed,
                };
                let _ = ev_tx.send(Event::Fatal(ErrorFrame {
                    id: NO_REQUEST_ID,
                    code,
                    message: e.to_string(),
                }));
                return;
            }
        }
    }
}

/// How long the writer sleeps between in-flight polls when nothing is
/// ready. The vendored channel library has no `select`, so completion
/// order is discovered by polling each handle's `try_wait`.
const POLL_IDLE: Duration = Duration::from_micros(100);

fn writer_loop(stream: TcpStream, ev_rx: Receiver<Event>, tap: NetTap) {
    let mut w = BufWriter::new(stream);
    // In-flight requests, answered in the order they FINISH: a slow
    // request never blocks a fast one behind it on the same connection.
    // The bool is the request's trace-echo opt-in.
    let mut inflight: Vec<(u64, bool, ResponseHandle)> = Vec::new();
    let mut open = true;

    let mut emit = |w: &mut BufWriter<TcpStream>, bytes: &[u8]| -> bool {
        let ok = wire::write_frame(w, bytes).is_ok();
        if ok {
            tap.frame_out(bytes.len() as u64);
        }
        ok
    };

    'conn: while open || !inflight.is_empty() {
        // Block only when there is nothing to poll; otherwise drain
        // whatever events are already queued and go back to polling.
        if inflight.is_empty() && open {
            match ev_rx.recv() {
                Ok(ev) => {
                    if !dispatch(ev, &mut inflight, &mut w, &mut emit) {
                        break 'conn;
                    }
                }
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        loop {
            match ev_rx.try_recv() {
                Ok(ev) => {
                    if !dispatch(ev, &mut inflight, &mut w, &mut emit) {
                        break 'conn;
                    }
                }
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        // Answer every request whose handle has resolved.
        let mut progressed = false;
        let mut i = 0;
        while i < inflight.len() {
            match inflight[i].2.try_wait() {
                Some(result) => {
                    let (id, echo_trace, _) = inflight.swap_remove(i);
                    progressed = true;
                    let bytes = match result {
                        Ok(resp) => {
                            let frame = ResponseFrame {
                                id,
                                timing: resp.timing,
                                output: resp.output,
                                trace: if echo_trace { resp.trace } else { None },
                            };
                            encode_response(&frame).unwrap_or_else(|e| {
                                encode_error(&ErrorFrame {
                                    id,
                                    code: WireErrorCode::Internal,
                                    message: format!("response unencodable: {e}"),
                                })
                            })
                        }
                        Err(e) => encode_error(&ErrorFrame {
                            id,
                            code: WireErrorCode::from_serve_error(&e),
                            message: e.to_string(),
                        }),
                    };
                    if !emit(&mut w, &bytes) {
                        break 'conn;
                    }
                }
                None => i += 1,
            }
        }
        if !progressed && !inflight.is_empty() {
            std::thread::sleep(POLL_IDLE);
        }
    }
    // A failed write means the peer is gone: remaining handles are
    // dropped, the pipeline still completes those requests server-side.
}

/// Apply one reader event. Returns `false` when the connection is dead
/// (write failure).
fn dispatch(
    ev: Event,
    inflight: &mut Vec<(u64, bool, ResponseHandle)>,
    w: &mut BufWriter<TcpStream>,
    emit: &mut impl FnMut(&mut BufWriter<TcpStream>, &[u8]) -> bool,
) -> bool {
    match ev {
        Event::Inflight(id, echo_trace, handle) => {
            inflight.push((id, echo_trace, handle));
            true
        }
        Event::Reject(frame) | Event::Fatal(frame) => emit(w, &encode_error(&frame)),
    }
}
