//! The `ODQ1` wire protocol: length-prefixed binary frames.
//!
//! Every frame is a 9-byte header followed by a body:
//!
//! ```text
//!   offset  size  field
//!   0       4     magic "ODQ1"
//!   4       1     kind   (1 = Request, 2 = Response, 3 = Error)
//!   5       4     body_len, u32 little-endian
//!   9       ..    body (exactly body_len bytes)
//! ```
//!
//! All multi-byte integers are little-endian. Tensor payloads are raw
//! `f32` little-endian words, so a round trip preserves every bit pattern
//! (including NaNs) — the bit-exactness the differential tests pin down.
//!
//! **Request** body (client → server):
//!
//! ```text
//!   id           u64    caller-chosen request id (the canary-routing key)
//!   flags        u8     bit 0: deadline present; bit 1: trace id present;
//!                       other bits must be zero
//!   deadline_ms  u64    only when flags bit 0 is set
//!   trace_id     u64    only when flags bit 1 is set
//!   name_len     u8     model-name length in bytes
//!   name         ..     UTF-8 model name
//!   ndims        u8     number of tensor dimensions (1 ..= max_dims)
//!   dims         u32×n  each dimension, all nonzero
//!   payload      f32×k  k = product(dims); must exactly fill the body
//!                       (up to the optional response trailer below)
//! ```
//!
//! **Response** body (server → client): `id` u64, then the timing
//! breakdown (`queue_wait_ns` u64, `service_ns` u64, `total_ns` u64,
//! `batch_size` u32), then the output tensor in the same
//! `ndims`/`dims`/payload layout, then — only when the request carried
//! [`FLAG_TRACE`] — a trailing `trace_id` u64 echoing the trace identity
//! the server used. Exactly 8 bytes after the tensor payload decode as
//! the trace echo; zero bytes mean no echo (a v1 frame); any other
//! trailing length is malformed.
//!
//! **Error** body (server → client): `id` u64 (`u64::MAX` when the error
//! is not attributable to one request — a malformed frame, a refused
//! connection), `code` u16 ([`WireErrorCode`]), `msg_len` u16, UTF-8
//! message.
//!
//! Decoding is hardened: the magic, kind, and declared `body_len` are
//! validated **before any payload allocation** (an oversized declaration
//! is rejected as [`WireError::TooLarge`] without reserving a byte), every
//! body field is bounds-checked as it is cursored over, the dim product is
//! overflow-checked and must exactly match the remaining payload bytes,
//! and trailing garbage is rejected. No input, however hostile, panics
//! the decoder.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use odq_serve::{InferRequest, RequestTiming, ServeError};
use odq_tensor::Tensor;

/// The 4-byte frame magic: protocol `ODQ`, revision `1`.
pub const MAGIC: [u8; 4] = *b"ODQ1";

/// Bytes in the fixed frame header (magic + kind + body_len).
pub const HEADER_LEN: usize = 9;

/// `id` value used in error frames that are not attributable to any
/// single request (malformed input, a refused connection).
pub const NO_REQUEST_ID: u64 = u64::MAX;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

/// Request-flags bit 0: a `deadline_ms` u64 follows the flags byte.
pub const FLAG_DEADLINE: u8 = 0b0000_0001;
/// Request-flags bit 1: a `trace_id` u64 follows the (optional) deadline.
/// A request carrying this flag gets the trace id echoed back as a
/// trailing u64 on its response frame.
pub const FLAG_TRACE: u8 = 0b0000_0010;

/// Decoder hardening limits. Everything a peer declares is checked
/// against these *before* any allocation happens on its behalf.
#[derive(Clone, Copy, Debug)]
pub struct WireLimits {
    /// Maximum accepted body length in bytes. A frame declaring more is
    /// rejected as [`WireError::TooLarge`] without reading or allocating
    /// its body. Default 16 MiB — a `[64, 3, 256, 256]` f32 batch fits.
    pub max_body: usize,
    /// Maximum tensor rank. Default 8.
    pub max_dims: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        Self { max_body: 16 << 20, max_dims: 8 }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`] — not an ODQ1 peer.
    BadMagic([u8; 4]),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// The declared body length exceeds [`WireLimits::max_body`];
    /// rejected before any allocation.
    TooLarge {
        /// Length the frame declared.
        declared: usize,
        /// The limit it exceeded.
        max_body: usize,
    },
    /// The body did not parse: a field overran the body, a length or
    /// count was inconsistent, a name was not UTF-8, or trailing bytes
    /// were left over.
    Malformed(String),
    /// The underlying transport failed (including EOF mid-frame).
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:?} (expected \"ODQ1\")"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::TooLarge { declared, max_body } => {
                write!(f, "declared body of {declared} bytes exceeds the {max_body}-byte limit")
            }
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Typed error codes carried in error frames — one per [`ServeError`]
/// variant, plus transport-level rejections the server itself raises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum WireErrorCode {
    /// [`ServeError::QueueFull`] — backpressure, retry later.
    QueueFull = 1,
    /// [`ServeError::UnknownModel`].
    UnknownModel = 2,
    /// [`ServeError::BadInput`].
    BadInput = 3,
    /// [`ServeError::DeadlineExceeded`].
    DeadlineExceeded = 4,
    /// [`ServeError::ShuttingDown`].
    ShuttingDown = 5,
    /// [`ServeError::WorkerLost`].
    WorkerLost = 6,
    /// [`ServeError::Internal`].
    Internal = 7,
    /// The frame did not parse; the connection is closed (framing cannot
    /// be trusted after a parse failure).
    Malformed = 8,
    /// The declared body exceeded the receiver's limit; connection closed.
    TooLarge = 9,
    /// The server's connection cap was reached; this connection was
    /// refused at accept time.
    TooManyConnections = 10,
}

impl WireErrorCode {
    /// Decode a code from the wire; `None` for unknown values.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::QueueFull,
            2 => Self::UnknownModel,
            3 => Self::BadInput,
            4 => Self::DeadlineExceeded,
            5 => Self::ShuttingDown,
            6 => Self::WorkerLost,
            7 => Self::Internal,
            8 => Self::Malformed,
            9 => Self::TooLarge,
            10 => Self::TooManyConnections,
            _ => return None,
        })
    }

    /// The code an admission or pipeline error travels the wire as.
    pub fn from_serve_error(e: &ServeError) -> Self {
        match e {
            ServeError::QueueFull => Self::QueueFull,
            ServeError::UnknownModel(_) => Self::UnknownModel,
            ServeError::BadInput(_) => Self::BadInput,
            ServeError::DeadlineExceeded => Self::DeadlineExceeded,
            ServeError::ShuttingDown => Self::ShuttingDown,
            ServeError::WorkerLost => Self::WorkerLost,
            ServeError::Internal => Self::Internal,
        }
    }

    /// The [`ServeError`] a client resolves this code to. The
    /// transport-level codes map onto the closest admission semantics:
    /// `TooManyConnections` is backpressure (→ `QueueFull`), `Malformed`
    /// / `TooLarge` mean the server judged what we sent invalid
    /// (→ `BadInput`).
    pub fn to_serve_error(self, msg: &str) -> ServeError {
        match self {
            Self::QueueFull | Self::TooManyConnections => ServeError::QueueFull,
            Self::UnknownModel => ServeError::UnknownModel(msg.to_string()),
            Self::BadInput | Self::Malformed | Self::TooLarge => {
                ServeError::BadInput(msg.to_string())
            }
            Self::DeadlineExceeded => ServeError::DeadlineExceeded,
            Self::ShuttingDown => ServeError::ShuttingDown,
            Self::WorkerLost => ServeError::WorkerLost,
            Self::Internal => ServeError::Internal,
        }
    }
}

/// A request travelling client → server.
#[derive(Clone, Debug)]
pub struct RequestFrame {
    /// Caller-chosen request id; echoed on the matching response or error
    /// frame, and used server-side as the canary-routing key.
    pub id: u64,
    /// Model name ([`InferRequest::model`]); at most 255 bytes of UTF-8.
    pub model: String,
    /// Optional deadline, millisecond resolution on the wire.
    pub deadline: Option<Duration>,
    /// Optional caller-chosen trace id ([`FLAG_TRACE`]). Propagated into
    /// [`InferRequest::trace`] server-side and echoed on the response.
    pub trace: Option<u64>,
    /// Input tensor.
    pub input: Tensor,
}

impl RequestFrame {
    /// Frame an [`InferRequest`] under the given wire id.
    pub fn from_request(id: u64, req: InferRequest) -> Self {
        Self { id, model: req.model, deadline: req.deadline, trace: req.trace, input: req.input }
    }

    /// The [`InferRequest`] this frame describes (id attached, so canary
    /// routing sees the same key on every resubmission).
    pub fn into_request(self) -> InferRequest {
        let mut req = InferRequest::new(self.model, self.input).with_id(self.id);
        req.deadline = self.deadline;
        req.trace = self.trace;
        req
    }
}

/// A successful response travelling server → client.
#[derive(Clone, Debug)]
pub struct ResponseFrame {
    /// The request id this answers.
    pub id: u64,
    /// Timing breakdown, nanosecond resolution on the wire.
    pub timing: RequestTiming,
    /// Output tensor.
    pub output: Tensor,
    /// Trace id echo, present iff the request carried [`FLAG_TRACE`] — a
    /// trailing u64 after the tensor payload on the wire, so v1 response
    /// frames (no trailer) still decode with `trace: None`.
    pub trace: Option<u64>,
}

/// A typed failure travelling server → client.
#[derive(Clone, Debug)]
pub struct ErrorFrame {
    /// The request id this answers, or [`NO_REQUEST_ID`] when the error
    /// is fatal to the connection rather than to one request.
    pub id: u64,
    /// What went wrong.
    pub code: WireErrorCode,
    /// Human-readable detail (at most 64 KiB on the wire).
    pub message: String,
}

/// Any decoded frame.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Client → server.
    Request(RequestFrame),
    /// Server → client, success.
    Response(ResponseFrame),
    /// Server → client, failure.
    Error(ErrorFrame),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_tensor(out: &mut Vec<u8>, t: &Tensor) -> Result<(), WireError> {
    let dims = t.dims();
    if dims.is_empty() || dims.len() > u8::MAX as usize {
        return Err(WireError::Malformed(format!("unencodable tensor rank {}", dims.len())));
    }
    out.push(dims.len() as u8);
    for &d in dims {
        let d = u32::try_from(d)
            .map_err(|_| WireError::Malformed(format!("dimension {d} exceeds u32")))?;
        out.extend_from_slice(&d.to_le_bytes());
    }
    for v in t.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(())
}

fn seal(kind: u8, body: Vec<u8>) -> Result<Vec<u8>, WireError> {
    let len = u32::try_from(body.len())
        .map_err(|_| WireError::Malformed(format!("body of {} bytes exceeds u32", body.len())))?;
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Encode a request frame (header included).
pub fn encode_request(f: &RequestFrame) -> Result<Vec<u8>, WireError> {
    if f.model.len() > u8::MAX as usize {
        return Err(WireError::Malformed(format!(
            "model name of {} bytes exceeds the 255-byte wire field",
            f.model.len()
        )));
    }
    let mut body = Vec::with_capacity(40 + f.model.len() + 4 * f.input.as_slice().len());
    body.extend_from_slice(&f.id.to_le_bytes());
    let mut flags = 0u8;
    if f.deadline.is_some() {
        flags |= FLAG_DEADLINE;
    }
    if f.trace.is_some() {
        flags |= FLAG_TRACE;
    }
    body.push(flags);
    if let Some(d) = f.deadline {
        body.extend_from_slice(&(d.as_millis().min(u64::MAX as u128) as u64).to_le_bytes());
    }
    if let Some(t) = f.trace {
        body.extend_from_slice(&t.to_le_bytes());
    }
    body.push(f.model.len() as u8);
    body.extend_from_slice(f.model.as_bytes());
    push_tensor(&mut body, &f.input)?;
    seal(KIND_REQUEST, body)
}

/// Encode a response frame (header included).
pub fn encode_response(f: &ResponseFrame) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::with_capacity(48 + 4 * f.output.as_slice().len());
    body.extend_from_slice(&f.id.to_le_bytes());
    let ns = |d: Duration| (d.as_nanos().min(u64::MAX as u128) as u64).to_le_bytes();
    body.extend_from_slice(&ns(f.timing.queue_wait));
    body.extend_from_slice(&ns(f.timing.service));
    body.extend_from_slice(&ns(f.timing.total));
    body.extend_from_slice(&(f.timing.batch_size.min(u32::MAX as usize) as u32).to_le_bytes());
    push_tensor(&mut body, &f.output)?;
    if let Some(t) = f.trace {
        body.extend_from_slice(&t.to_le_bytes());
    }
    seal(KIND_RESPONSE, body)
}

/// Encode an error frame (header included). Infallible: the message is
/// truncated to the 64 KiB wire field if needed.
pub fn encode_error(f: &ErrorFrame) -> Vec<u8> {
    let mut msg = f.message.as_bytes();
    if msg.len() > u16::MAX as usize {
        let mut cut = u16::MAX as usize;
        while cut > 0 && !f.message.is_char_boundary(cut) {
            cut -= 1;
        }
        msg = &f.message.as_bytes()[..cut];
    }
    let mut body = Vec::with_capacity(12 + msg.len());
    body.extend_from_slice(&f.id.to_le_bytes());
    body.extend_from_slice(&(f.code as u16).to_le_bytes());
    body.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    body.extend_from_slice(msg);
    seal(KIND_ERROR, body).expect("error body is always small")
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked reader over a frame body. Every overrun is a
/// [`WireError::Malformed`], never a slice panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            WireError::Malformed(format!(
                "{what} needs {n} bytes but only {} remain",
                self.buf.len() - self.pos
            ))
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// `ndims` + dims + f32 payload; consumes exactly the payload the
    /// declared shape calls for. Callers decide what any remaining bytes
    /// mean — request decoding rejects them via [`Cursor::finish`],
    /// response decoding accepts exactly one trailing trace-echo u64.
    fn tensor(&mut self, limits: &WireLimits) -> Result<Tensor, WireError> {
        let ndims = self.u8("ndims")? as usize;
        if ndims == 0 || ndims > limits.max_dims {
            return Err(WireError::Malformed(format!(
                "tensor rank {ndims} outside 1..={}",
                limits.max_dims
            )));
        }
        let mut dims = Vec::with_capacity(ndims);
        let mut elems = 1usize;
        for i in 0..ndims {
            let d = self.u32("dimension")? as usize;
            if d == 0 {
                return Err(WireError::Malformed(format!("dimension {i} is zero")));
            }
            elems = elems
                .checked_mul(d)
                .ok_or_else(|| WireError::Malformed("dim product overflows".to_string()))?;
            dims.push(d);
        }
        let want = elems
            .checked_mul(4)
            .ok_or_else(|| WireError::Malformed("payload size overflows".to_string()))?;
        if self.remaining() < want {
            return Err(WireError::Malformed(format!(
                "shape {dims:?} needs {want} payload bytes, body carries {}",
                self.remaining()
            )));
        }
        // The payload length was validated against the (already
        // max_body-bounded) body, so this allocation is bounded too.
        let data: Vec<f32> = self
            .take(want, "payload")?
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(Tensor::from_vec(dims, data))
    }
}

fn decode_request(body: &[u8], limits: &WireLimits) -> Result<RequestFrame, WireError> {
    let mut c = Cursor::new(body);
    let id = c.u64("request id")?;
    let flags = c.u8("flags")?;
    if flags & !(FLAG_DEADLINE | FLAG_TRACE) != 0 {
        return Err(WireError::Malformed(format!("unknown flag bits {flags:#04x}")));
    }
    let deadline = if flags & FLAG_DEADLINE != 0 {
        Some(Duration::from_millis(c.u64("deadline")?))
    } else {
        None
    };
    let trace = if flags & FLAG_TRACE != 0 { Some(c.u64("trace id")?) } else { None };
    let name_len = c.u8("name length")? as usize;
    let model = std::str::from_utf8(c.take(name_len, "model name")?)
        .map_err(|_| WireError::Malformed("model name is not UTF-8".to_string()))?
        .to_string();
    let input = c.tensor(limits)?;
    c.finish()?;
    Ok(RequestFrame { id, model, deadline, trace, input })
}

fn decode_response(body: &[u8], limits: &WireLimits) -> Result<ResponseFrame, WireError> {
    let mut c = Cursor::new(body);
    let id = c.u64("request id")?;
    let timing = RequestTiming {
        queue_wait: Duration::from_nanos(c.u64("queue_wait_ns")?),
        service: Duration::from_nanos(c.u64("service_ns")?),
        total: Duration::from_nanos(c.u64("total_ns")?),
        batch_size: c.u32("batch_size")? as usize,
    };
    let output = c.tensor(limits)?;
    // Trailing trace echo: exactly one u64, or nothing (a v1 frame).
    let trace = match c.remaining() {
        0 => None,
        8 => Some(c.u64("trace echo")?),
        n => {
            return Err(WireError::Malformed(format!(
                "{n} trailing bytes after the tensor (trace echo is exactly 8)"
            )))
        }
    };
    c.finish()?;
    Ok(ResponseFrame { id, timing, output, trace })
}

fn decode_error(body: &[u8]) -> Result<ErrorFrame, WireError> {
    let mut c = Cursor::new(body);
    let id = c.u64("request id")?;
    let raw = c.u16("error code")?;
    let code = WireErrorCode::from_u16(raw)
        .ok_or_else(|| WireError::Malformed(format!("unknown error code {raw}")))?;
    let msg_len = c.u16("message length")? as usize;
    let message = std::str::from_utf8(c.take(msg_len, "message")?)
        .map_err(|_| WireError::Malformed("message is not UTF-8".to_string()))?
        .to_string();
    c.finish()?;
    Ok(ErrorFrame { id, code, message })
}

/// Read one frame. Returns the frame and its total wire size in bytes.
///
/// The header is validated — magic, kind, declared length against
/// [`WireLimits::max_body`] — *before* the body is read or any buffer is
/// allocated, so a hostile length prefix cannot balloon memory. An EOF
/// mid-frame is [`WireError::Io`]; a clean EOF before any byte of a frame
/// is an `Io` error of kind [`io::ErrorKind::UnexpectedEof`] too (the
/// caller decides whether that boundary was expected).
pub fn read_frame(r: &mut impl Read, limits: &WireLimits) -> Result<(Frame, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = header[4];
    if !(KIND_REQUEST..=KIND_ERROR).contains(&kind) {
        return Err(WireError::BadKind(kind));
    }
    let body_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
    if body_len > limits.max_body {
        return Err(WireError::TooLarge { declared: body_len, max_body: limits.max_body });
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let frame = match kind {
        KIND_REQUEST => Frame::Request(decode_request(&body, limits)?),
        KIND_RESPONSE => Frame::Response(decode_response(&body, limits)?),
        _ => Frame::Error(decode_error(&body)?),
    };
    Ok((frame, HEADER_LEN + body_len))
}

/// Write pre-encoded frame bytes and flush them onto the wire.
pub fn write_frame(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Tensor {
        // Include a NaN and a negative zero: the wire must preserve bits.
        Tensor::from_vec(vec![1, 2, 3], vec![0.5, -0.0, f32::NAN, 1e-38, -3.25, 97.0])
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn round_trip(bytes: Vec<u8>) -> (Frame, usize) {
        read_frame(&mut bytes.as_slice(), &WireLimits::default()).expect("round trip")
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        let f = RequestFrame {
            id: 7,
            model: "lenet".into(),
            deadline: Some(Duration::from_millis(250)),
            trace: Some(0xDEAD_BEEF_F00D_CAFE),
            input: tensor(),
        };
        let bytes = encode_request(&f).unwrap();
        let (frame, n) = round_trip(bytes.clone());
        assert_eq!(n, bytes.len());
        match frame {
            Frame::Request(g) => {
                assert_eq!(g.id, 7);
                assert_eq!(g.model, "lenet");
                assert_eq!(g.deadline, Some(Duration::from_millis(250)));
                assert_eq!(g.trace, Some(0xDEAD_BEEF_F00D_CAFE));
                assert_eq!(g.input.dims(), f.input.dims());
                assert_eq!(bits(&g.input), bits(&f.input));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn request_without_deadline_round_trips() {
        let f =
            RequestFrame { id: 0, model: "m".into(), deadline: None, trace: None, input: tensor() };
        match round_trip(encode_request(&f).unwrap()).0 {
            Frame::Request(g) => {
                assert_eq!(g.deadline, None);
                assert_eq!(g.trace, None);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn response_round_trips_bit_exactly() {
        let f = ResponseFrame {
            id: u64::MAX - 1,
            timing: RequestTiming {
                queue_wait: Duration::from_nanos(123),
                service: Duration::from_micros(456),
                total: Duration::from_millis(789),
                batch_size: 8,
            },
            output: tensor(),
            trace: Some(41),
        };
        match round_trip(encode_response(&f).unwrap()).0 {
            Frame::Response(g) => {
                assert_eq!(g.id, f.id);
                assert_eq!(g.timing.queue_wait, f.timing.queue_wait);
                assert_eq!(g.timing.service, f.timing.service);
                assert_eq!(g.timing.total, f.timing.total);
                assert_eq!(g.timing.batch_size, 8);
                assert_eq!(bits(&g.output), bits(&f.output));
                assert_eq!(g.trace, Some(41));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn error_round_trips_every_code() {
        for raw in 1..=10u16 {
            let code = WireErrorCode::from_u16(raw).unwrap();
            let f = ErrorFrame { id: NO_REQUEST_ID, code, message: format!("code {raw}") };
            match round_trip(encode_error(&f)).0 {
                Frame::Error(g) => {
                    assert_eq!(g.code, code);
                    assert_eq!(g.id, NO_REQUEST_ID);
                    assert_eq!(g.message, format!("code {raw}"));
                }
                other => panic!("wrong kind: {other:?}"),
            }
        }
        assert!(WireErrorCode::from_u16(0).is_none());
        assert!(WireErrorCode::from_u16(11).is_none());
    }

    #[test]
    fn serve_error_codes_round_trip_through_the_wire_taxonomy() {
        let cases = [
            ServeError::QueueFull,
            ServeError::UnknownModel("m".into()),
            ServeError::BadInput("b".into()),
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::WorkerLost,
            ServeError::Internal,
        ];
        for e in cases {
            let code = WireErrorCode::from_serve_error(&e);
            let back = code.to_serve_error(match &e {
                ServeError::UnknownModel(m) => m,
                ServeError::BadInput(b) => b,
                _ => "",
            });
            assert_eq!(back, e, "ServeError must survive the wire taxonomy");
        }
    }

    #[test]
    fn bad_magic_and_kind_are_typed_errors() {
        let mut bytes = encode_error(&ErrorFrame {
            id: 0,
            code: WireErrorCode::Internal,
            message: String::new(),
        });
        bytes[0] = b'X';
        match read_frame(&mut bytes.as_slice(), &WireLimits::default()) {
            Err(WireError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        bytes[0] = b'O';
        bytes[4] = 99;
        match read_frame(&mut bytes.as_slice(), &WireLimits::default()) {
            Err(WireError::BadKind(99)) => {}
            other => panic!("expected BadKind, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_the_body() {
        // Header only: the declared 1 GiB body is never read, so a valid
        // header alone must already produce the error.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(KIND_REQUEST);
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        match read_frame(&mut bytes.as_slice(), &WireLimits::default()) {
            Err(WireError::TooLarge { declared, max_body }) => {
                assert_eq!(declared, 1 << 30);
                assert_eq!(max_body, 16 << 20);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_garbage_never_panic() {
        let good = encode_request(&RequestFrame {
            id: 3,
            model: "m".into(),
            deadline: Some(Duration::from_millis(1)),
            trace: None,
            input: tensor(),
        })
        .unwrap();
        // Every prefix is an Io (truncated) or Malformed error, never a
        // panic or an Ok.
        for cut in 0..good.len() {
            let r = read_frame(&mut &good[..cut], &WireLimits::default());
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
        // Flipping the payload length consistency: shape says 6 elems but
        // the body carries one extra word.
        let mut long = good.clone();
        let len = (long.len() - HEADER_LEN + 4) as u32;
        long[5..9].copy_from_slice(&len.to_le_bytes());
        long.extend_from_slice(&1.0f32.to_le_bytes());
        match read_frame(&mut long.as_slice(), &WireLimits::default()) {
            Err(WireError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn zero_dims_unknown_flags_and_bad_utf8_are_malformed() {
        let limits = WireLimits::default();
        // Unknown flag bit.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0b1000_0000);
        let framed = seal(KIND_REQUEST, body).unwrap();
        assert!(matches!(
            read_frame(&mut framed.as_slice(), &limits),
            Err(WireError::Malformed(_))
        ));
        // Zero dimension.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0); // no deadline
        body.push(1); // name_len
        body.push(b'm');
        body.push(1); // ndims
        body.extend_from_slice(&0u32.to_le_bytes());
        let framed = seal(KIND_REQUEST, body).unwrap();
        assert!(matches!(
            read_frame(&mut framed.as_slice(), &limits),
            Err(WireError::Malformed(_))
        ));
        // Non-UTF-8 model name.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0);
        body.push(1);
        body.push(0xFF);
        let framed = seal(KIND_REQUEST, body).unwrap();
        assert!(matches!(
            read_frame(&mut framed.as_slice(), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn dim_product_overflow_is_malformed_not_oom() {
        // Eight u32::MAX dims would overflow any product; the decoder must
        // reject the declaration without attempting the allocation.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0);
        body.push(1);
        body.push(b'm');
        body.push(8);
        for _ in 0..8 {
            body.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        let framed = seal(KIND_REQUEST, body).unwrap();
        assert!(matches!(
            read_frame(&mut framed.as_slice(), &WireLimits::default()),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_error_message_is_truncated_at_a_char_boundary() {
        let f = ErrorFrame {
            id: 1,
            code: WireErrorCode::Internal,
            message: "é".repeat(40_000), // 80 kB of 2-byte chars
        };
        match round_trip(encode_error(&f)).0 {
            Frame::Error(g) => {
                assert!(g.message.len() <= u16::MAX as usize);
                assert!(g.message.chars().all(|c| c == 'é'));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
