//! The TCP client: `submit` over the wire, same handle type as in-process.
//!
//! [`NetClient::submit`] frames the request, writes it, and returns the
//! same [`ResponseHandle`] the in-process [`odq_serve::Server`] hands out
//! — resolved by a background reader thread that routes response and
//! error frames back to their requests by id, in whatever order the
//! server finishes them. The client therefore implements
//! [`LoadTarget`], so the `odq_serve` load generators drive a remote
//! server exactly like a local one.
//!
//! Failure semantics mirror the in-process contract: a request the
//! transport loses (connection reset, server gone) resolves its handle to
//! [`ServeError::WorkerLost`]; a request the server rejects resolves to
//! the typed [`ServeError`] its error frame carried; a submit after the
//! reader thread has died (connection torn down, stream corrupted) fails
//! at the call with [`ServeError::ShuttingDown`]. In every case the
//! waiter gets exactly one typed outcome — never a hang.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use odq_serve::{
    InferRequest, InferResponse, LoadTarget, ResponseHandle, ResponseSender, ServeError,
};

use crate::wire::{self, encode_request, Frame, RequestFrame, WireLimits, NO_REQUEST_ID};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A connection to a remote `odq-net` server.
pub struct NetClient {
    stream: TcpStream,
    /// Writes are short and framed; a mutex serializes concurrent
    /// submitters onto the socket.
    write: Mutex<TcpStream>,
    /// In-flight requests by wire id; the reader thread resolves them.
    pending: Arc<Mutex<HashMap<u64, ResponseSender>>>,
    /// Cleared by the reader thread *before* it drops the pending map's
    /// senders on exit, so `submit` can detect a dead connection instead
    /// of registering a request nobody will ever resolve.
    reader_alive: Arc<AtomicBool>,
    /// Wire ids for requests that do not bring their own.
    seq: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl NetClient {
    /// Connect with default [`WireLimits`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, WireLimits::default())
    }

    /// Connect with explicit decoder limits (must admit the response
    /// tensors the server will send).
    pub fn connect_with(addr: impl ToSocketAddrs, limits: WireLimits) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let write = Mutex::new(stream.try_clone()?);
        let pending: Arc<Mutex<HashMap<u64, ResponseSender>>> = Arc::default();
        let reader_alive = Arc::new(AtomicBool::new(true));
        let read_half = stream.try_clone()?;
        let reader_pending = Arc::clone(&pending);
        let reader_flag = Arc::clone(&reader_alive);
        let reader = std::thread::Builder::new()
            .name("odq-net-client-read".into())
            .spawn(move || reader_loop(read_half, reader_pending, reader_flag, limits))?;
        Ok(Self {
            stream,
            write,
            pending,
            reader_alive,
            seq: AtomicU64::new(0),
            reader: Some(reader),
        })
    }

    /// Submit a request over the wire. Returns immediately with a handle
    /// the background reader resolves when the server answers.
    ///
    /// Unlike the in-process server, admission errors (queue full,
    /// unknown model, ...) arrive *through the handle*: the only
    /// submit-time failures are a dead connection
    /// ([`ServeError::ShuttingDown`]), an unencodable request, or a
    /// caller-chosen id that is already in flight on this connection
    /// (both [`ServeError::BadInput`]).
    pub fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError> {
        let id = match req.id {
            Some(id) => id,
            None => self.next_id(),
        };
        let frame = RequestFrame::from_request(id, req);
        let bytes = encode_request(&frame)
            .map_err(|e| ServeError::BadInput(format!("unencodable request: {e}")))?;
        let (tx, handle) = ResponseHandle::channel();
        {
            let mut pending = lock(&self.pending);
            if pending.contains_key(&id) {
                return Err(ServeError::BadInput(format!(
                    "request id {id} is already in flight on this connection"
                )));
            }
            pending.insert(id, tx);
        }
        // Registered before the write, so a fast response cannot race the
        // bookkeeping. On a write failure the registration is rolled back.
        let write_ok = {
            let mut w = lock(&self.write);
            w.write_all(&bytes).and_then(|_| w.flush()).is_ok()
        };
        if !write_ok {
            lock(&self.pending).remove(&id);
            return Err(ServeError::ShuttingDown);
        }
        // The write can succeed into a socket whose reader has already
        // exited (the OS buffers it; the death is only visible on the read
        // half). The reader clears `reader_alive` *before* dropping the
        // pending senders, so the ordering here is airtight: if the flag
        // is still set after our insert, the reader was alive to see the
        // registration and will resolve or drop it; if it is clear and our
        // entry is still in the map, the reader exited before our insert
        // and nobody will ever resolve it — take it back and fail typed,
        // exactly like a failed write, so no waiter can hang.
        if !self.reader_alive.load(Ordering::SeqCst) && lock(&self.pending).remove(&id).is_some() {
            return Err(ServeError::ShuttingDown);
        }
        Ok(handle)
    }

    /// Submit and block for the answer.
    pub fn infer(&self, req: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Graceful close: stop sending (the server sees EOF, answers
    /// everything in flight, then closes), wait for the reader to drain
    /// the remaining responses.
    pub fn close(mut self) {
        let _ = self.stream.shutdown(Shutdown::Write);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }

    /// A wire id no caller-chosen id is likely to collide with: the top
    /// half of the sequence space (`u64::MAX` itself stays reserved for
    /// unattributable error frames).
    fn next_id(&self) -> u64 {
        (1u64 << 63) | (self.seq.fetch_add(1, Ordering::Relaxed) & !(1u64 << 63))
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

impl LoadTarget for NetClient {
    fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError> {
        NetClient::submit(self, req)
    }
}

fn reader_loop(
    stream: TcpStream,
    pending: Arc<Mutex<HashMap<u64, ResponseSender>>>,
    alive: Arc<AtomicBool>,
    limits: WireLimits,
) {
    let mut r = BufReader::new(stream);
    loop {
        match wire::read_frame(&mut r, &limits) {
            Ok((Frame::Response(rf), _)) => {
                if let Some(tx) = lock(&pending).remove(&rf.id) {
                    tx.send(Ok(InferResponse {
                        output: rf.output,
                        timing: rf.timing,
                        trace: rf.trace,
                    }));
                }
            }
            Ok((Frame::Error(ef), _)) => {
                if ef.id == NO_REQUEST_ID {
                    // Connection-fatal: the server is closing this
                    // connection; everything unresolved becomes
                    // WorkerLost below.
                    break;
                }
                if let Some(tx) = lock(&pending).remove(&ef.id) {
                    tx.send(Err(ef.code.to_serve_error(&ef.message)));
                }
            }
            // Servers do not send requests; a decode failure means the
            // stream cannot be trusted any further.
            Ok((Frame::Request(_), _)) | Err(_) => break,
        }
    }
    // Death is published *before* the pending senders drop: a submit that
    // registers after this store will see the flag and withdraw; one that
    // registered before is cleared here, resolving its handle to
    // WorkerLost. Either way, no waiter is left behind.
    alive.store(false, Ordering::SeqCst);
    // Dropping the senders resolves every still-pending handle to
    // WorkerLost — the same contract as a dropped in-process pipeline.
    lock(&pending).clear();
}
