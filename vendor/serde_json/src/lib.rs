//! Offline stand-in for `serde_json`, covering the workspace's usage:
//! [`to_string_pretty`], [`from_str`] into a [`Value`] tree, and the
//! [`json!`] macro for object/array literals with expression values.

#![allow(clippy::all)]
pub use serde::Value;

/// Parse or serialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize any [`serde::Serialize`] value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep floats recognizable as floats on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; real serde_json emits null here too.
        out.push_str("null");
    }
}

fn write_scalar(v: &Value, out: &mut String) -> bool {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_number_f64(*n, out),
        Value::String(s) => write_escaped(s, out),
        _ => return false,
    }
    true
}

fn write_compact(v: &Value, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
        _ => unreachable!("scalar already handled"),
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Object(fields) => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push('}');
        }
        _ => unreachable!("scalar already handled"),
    }
}

/// Parse JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected , or ] got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error::new(format!("expected , or }} got {other:?}"))),
            }
        }
    }
}

/// Build a [`Value`] from an object/array literal with expression values:
/// `json!({ "k": expr, "n": 1 + 2 })`, `json!([a, b])`, `json!(expr)`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Recursive token muncher behind [`json!`] — not part of the public API.
/// Structured after the upstream crate's `json_internal!`: arrays and
/// objects are consumed token-by-token so nested `{...}`/`[...]` literals
/// work at any depth.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////// arrays ////////////////////
    // Done: emit the accumulated elements.
    (@array [$($elems:expr,)*]) => { ::std::vec![$($elems,)*] };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($rest)*)
    };
    // Next element is a nested array.
    (@array [$($elems:expr,)*] [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($rest)*)
    };
    // Next element is a nested object.
    (@array [$($elems:expr,)*] {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($rest)*)
    };
    // Last element, no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$last),])
    };
    // Comma separating elements already wrapped.
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////// objects ////////////////////
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the finished entry, trailing comma: keep munching.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((::std::string::String::from($($key)+), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry, no trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((::std::string::String::from($($key)+), $value));
    };
    // Value for the current key is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Null) $($rest)*);
    };
    // Value is a nested array.
    (@object $object:ident ($($key:tt)+) (: [$($inner:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($inner)*])) $($rest)*
        );
    };
    // Value is a nested object.
    (@object $object:ident ($($key:tt)+) (: {$($inner:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($inner)*})) $($rest)*
        );
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::to_value(&$value)) , $($rest)*);
    };
    // Value is the last expression, no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::to_value(&$value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////// entry points ////////////////////
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Convert any serializable value into a [`Value`] (used by [`json!`]).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = json!({
            "name": "resnet20",
            "acc": 0.5,
            "n": 3u32,
            "flag": true,
            "items": [1u8, 2u8],
        });
        let s = to_string_pretty(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back["name"].as_str(), Some("resnet20"));
        assert_eq!(back["acc"].as_f64(), Some(0.5));
        assert_eq!(back["n"].as_u64(), Some(3));
        assert_eq!(back["flag"].as_bool(), Some(true));
        assert_eq!(back["items"].as_array().map(|a| a.len()), Some(2));
    }

    #[test]
    fn json_macro_nests() {
        let acc = 0.75f64;
        let v = json!({
            "global": {"acc": acc, "insensitive": 0.5},
            "rows": [{"n": 1u32}, {"n": 2u32}],
            "matrix": [[1u8, 2u8], [3u8]],
            "none": null,
            "trailing": [1u8, 2u8,],
        });
        assert_eq!(v["global"]["acc"].as_f64(), Some(0.75));
        assert_eq!(v["global"]["insensitive"].as_f64(), Some(0.5));
        assert_eq!(v["rows"][1]["n"].as_u64(), Some(2));
        assert_eq!(v["matrix"][0].as_array().map(|a| a.len()), Some(2));
        assert!(matches!(v["none"], Value::Null));
        assert_eq!(v["trailing"].as_array().map(|a| a.len()), Some(2));
        // Round-trips through the printer/parser.
        let back = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back["rows"][0]["n"].as_u64(), Some(1));
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v = from_str(r#"{"a": [{"b": "x\ny"}, null], "c": -2.5e1}"#).unwrap();
        assert_eq!(v["a"][0]["b"].as_str(), Some("x\ny"));
        assert_eq!(v["a"][1], Value::Null);
        assert_eq!(v["c"].as_f64(), Some(-25.0));
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str(&s).unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{invalid}").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("1 2").is_err());
    }
}
