//! Offline stand-in for `crossbeam`.
//!
//! Provides [`channel`]: multi-producer multi-consumer channels with the
//! `crossbeam-channel` API surface this workspace uses (`bounded`,
//! `unbounded`, `try_send`, `recv_timeout`, disconnect semantics). The
//! implementation is a mutex + condvar queue rather than crossbeam's
//! lock-free design — correctness and API compatibility over raw speed,
//! which is ample for the request granularity of `odq-serve` (whole DNN
//! inferences, not individual messages per microsecond).

#![allow(clippy::all)]
pub mod channel;
