//! MPMC channels with `crossbeam-channel`-compatible types and semantics.
//!
//! * `bounded(cap)` — backpressured queue; `send` blocks when full,
//!   `try_send` fails fast with [`TrySendError::Full`].
//! * `unbounded()` — never full.
//! * Disconnection: when all `Sender`s drop, receivers drain the queue and
//!   then observe `Disconnected`; when all `Receiver`s drop, sends fail.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded channel with capacity `cap` (must be ≥ 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "bounded channel capacity must be at least 1");
    make(Some(cap))
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error for [`Sender::send`]: the message comes back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        self.0
    }
}

/// Error for [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and full.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error for [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl<T> Sender<T> {
    /// Send, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).expect("channel poisoned");
                }
                _ => break,
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking; fails with `Full` on a full bounded channel.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message or disconnection.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel poisoned");
            inner = guard;
            if res.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Self { shared: self.shared.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").receivers += 1;
        Self { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl<T> std::error::Error for SendError<T> {}
impl<T> std::error::Error for TrySendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for RecvTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_backpressure_try_send() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_drains_then_errors() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(5).is_err());
        assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn mpmc_threads_deliver_everything_once() {
        let (tx, rx) = bounded::<u64>(4);
        let mut senders = Vec::new();
        for s in 0..3u64 {
            let tx = tx.clone();
            senders.push(thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(s * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut receivers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            receivers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for s in senders {
            s.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for r in receivers {
            all.extend(r.join().unwrap());
        }
        all.sort_unstable();
        let mut want: Vec<u64> =
            (0..3u64).flat_map(|s| (0..100u64).map(move |i| s * 1000 + i)).collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn blocking_send_resumes_when_space_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).is_ok());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
    }
}
