//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), numeric range strategies, `prop::collection::vec`, the
//! `prop_assert!`/`prop_assert_eq!` macros, and failing-case persistence
//! ([`regression`]): when a case fails, its RNG state is appended to
//! `<crate>/proptest-regressions/<source file stem>.txt`, and persisted
//! states replay *before* the regular case stream on every later run —
//! commit the file and CI re-checks the exact failing input forever.
//! Differences from the real crate: cases are generated from a seed
//! derived deterministically from the test name (fully reproducible), and
//! failing inputs are reported but *not* shrunk — persistence stores the
//! raw case, so pair it with a domain-level minimizer (see
//! `odq-conformance`) when a smaller reproducer matters.

#![allow(clippy::all)]
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SplitMix64};

/// RNG handed to strategies while generating a case.
pub type TestRng = SplitMix64;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Constant strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Lengths accepted by [`vec`]: an exact `usize` or a range.
        pub trait SizeRange {
            /// Draw a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy producing `Vec`s of `element` with lengths from `size`.
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        /// `Vec` strategy: `vec(0.0f32..1.0, 1..128)` or `vec(strat, 32)`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Failing-case persistence, mirroring the real crate's
/// `proptest-regressions/` files.
///
/// The vendored [`TestRng`] is a SplitMix64 whose raw state fully
/// determines the remaining stream, so persisting the state captured
/// *before* a case was sampled is enough to replay that case exactly.
/// Entries live one file per source file, one line per case:
/// `cc <module::test_name> <0x-prefixed state>`.
pub mod regression {
    use std::io::Write;
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases the vendored proptest generated in the past.
# Each `cc <test path> <rng state>` line replays one failing case: the
# state re-seeds the test RNG before sampling, so the exact inputs are
# regenerated and re-run *before* any novel cases on every test run.
# Commit this file so CI replays the cases forever; delete a line only
# when the property or strategy changed enough that the state no longer
# reproduces anything meaningful.
";

    /// Store tied to one source file: entries live in
    /// `<manifest_dir>/proptest-regressions/<source file stem>.txt`.
    pub struct Store {
        path: PathBuf,
    }

    impl Store {
        /// Store for a crate's manifest dir and a `file!()` path.
        pub fn new(manifest_dir: &str, source_file: &str) -> Self {
            let stem =
                Path::new(source_file).file_stem().and_then(|s| s.to_str()).unwrap_or("unknown");
            let path =
                Path::new(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"));
            Self { path }
        }

        /// The file this store reads and writes.
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// Persisted RNG states for `test_name` (empty when no file or no
        /// entries; malformed lines are skipped, not fatal).
        pub fn load(&self, test_name: &str) -> Vec<u64> {
            let Ok(text) = std::fs::read_to_string(&self.path) else {
                return Vec::new();
            };
            let mut states = Vec::new();
            for line in text.lines() {
                let mut parts = line.split_whitespace();
                if parts.next() != Some("cc") || parts.next() != Some(test_name) {
                    continue;
                }
                let state = parts
                    .next()
                    .and_then(|h| u64::from_str_radix(h.trim_start_matches("0x"), 16).ok());
                if let Some(s) = state {
                    states.push(s);
                }
            }
            states
        }

        /// Append a failing state, creating the file (with an explanatory
        /// header) on first use. Deduplicates; honours
        /// `PROPTEST_DONT_PERSIST` for runs that must not touch the tree.
        pub fn record(&self, test_name: &str, state: u64) -> std::io::Result<PathBuf> {
            if std::env::var_os("PROPTEST_DONT_PERSIST").is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "persistence disabled by PROPTEST_DONT_PERSIST",
                ));
            }
            if self.load(test_name).contains(&state) {
                return Ok(self.path.clone());
            }
            if let Some(dir) = self.path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let fresh = !self.path.exists();
            let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
            if fresh {
                f.write_all(HEADER.as_bytes())?;
            }
            writeln!(f, "cc {test_name} {state:#018x}")?;
            Ok(self.path.clone())
        }
    }
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert inside a property (panics with the formatted message on failure;
/// the harness reports the failing case number and seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0i16..4, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let __store = $crate::regression::Store::new(env!("CARGO_MANIFEST_DIR"), file!());
                let mut __run_case = |__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<
                        (),
                        (::std::string::String, ::std::boxed::Box<dyn ::std::any::Any + ::std::marker::Send>),
                    >
                {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    // Render the case up front: the body may move the args.
                    let mut __case_desc = ::std::string::String::new();
                    $(__case_desc.push_str(
                        &::std::format!("  {} = {:?}\n", stringify!($arg), &$arg),
                    );)+
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    })) {
                        ::std::result::Result::Ok(_) => ::std::result::Result::Ok(()),
                        ::std::result::Result::Err(e) => {
                            ::std::result::Result::Err((__case_desc, e))
                        }
                    }
                };
                // Replay persisted regressions before any novel cases, as
                // the real crate does.
                for __state in __store.load(__test_name) {
                    let mut __rng = $crate::TestRng::new(__state);
                    if let ::std::result::Result::Err((__desc, __err)) = __run_case(&mut __rng) {
                        eprintln!(
                            "persisted regression {:#018x} (from {}) still fails for {}:\n{}",
                            __state,
                            __store.path().display(),
                            __test_name,
                            __desc,
                        );
                        ::std::panic::resume_unwind(__err);
                    }
                }
                let mut __rng = $crate::TestRng::new($crate::seed_for(__test_name));
                for __case in 0..config.cases {
                    // The RNG state captured *before* sampling replays this
                    // exact case when fed back in via the regressions file.
                    let __state = __rng.state();
                    if let ::std::result::Result::Err((__desc, __err)) = __run_case(&mut __rng) {
                        let __where = match __store.record(__test_name, __state) {
                            ::std::result::Result::Ok(p) => {
                                ::std::format!(", persisted to {}", p.display())
                            }
                            ::std::result::Result::Err(_) => ::std::string::String::new(),
                        };
                        eprintln!(
                            "proptest case {}/{} failed for {} (rng state {:#018x}{}):\n{}",
                            __case + 1,
                            config.cases,
                            __test_name,
                            __state,
                            __where,
                            __desc,
                        );
                        ::std::panic::resume_unwind(__err);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, f in -1.0f32..1.0, k in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0i16..4, 1..9), w in prop::collection::vec(0u8..2, 5)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert_eq!(w.len(), 5);
            prop_assert!(v.iter().all(|&c| (0..4).contains(&c)));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }

    /// `PROPTEST_DONT_PERSIST` is process-global: serialize the two tests
    /// that touch it (one sets it, one needs it unset).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        // Held across the deliberate panic; the other holder recovers the
        // poisoned lock.
        let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Deliberate failure: don't let it seed a regressions file.
        std::env::set_var("PROPTEST_DONT_PERSIST", "1");
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn regression_store_roundtrips_and_dedups() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::remove_var("PROPTEST_DONT_PERSIST");
        let dir = std::env::temp_dir().join("odq-proptest-regression-test");
        std::fs::remove_dir_all(&dir).ok();
        let store = crate::regression::Store::new(dir.to_str().unwrap(), "tests/example.rs");
        assert!(store.load("m::t").is_empty(), "no file yet");
        store.record("m::t", 0xDEAD_BEEF).unwrap();
        store.record("m::t", 0xDEAD_BEEF).unwrap(); // dedup
        store.record("m::t", 7).unwrap();
        store.record("m::other", 9).unwrap();
        assert_eq!(store.load("m::t"), vec![0xDEAD_BEEF, 7]);
        assert_eq!(store.load("m::other"), vec![9]);
        let text = std::fs::read_to_string(store.path()).unwrap();
        assert!(text.starts_with("# Seeds"), "header present:\n{text}");
        assert_eq!(text.matches("cc m::t ").count(), 2, "deduped:\n{text}");
        // A replayed state regenerates the same case the live stream saw.
        let mut live = TestRng::new(42);
        let state = live.state();
        let sampled = live.next();
        let mut replay = TestRng::new(state);
        assert_eq!(replay.next(), sampled);
        std::fs::remove_dir_all(&dir).ok();
    }
}
