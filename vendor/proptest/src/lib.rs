//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), numeric range strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Differences from the real
//! crate: cases are generated from a seed derived deterministically from
//! the test name (fully reproducible, no persistence files), and failing
//! inputs are reported but *not* shrunk.

#![allow(clippy::all)]
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SplitMix64};

/// RNG handed to strategies while generating a case.
pub type TestRng = SplitMix64;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Constant strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Lengths accepted by [`vec`]: an exact `usize` or a range.
        pub trait SizeRange {
            /// Draw a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy producing `Vec`s of `element` with lengths from `size`.
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        /// `Vec` strategy: `vec(0.0f32..1.0, 1..128)` or `vec(strat, 32)`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert inside a property (panics with the formatted message on failure;
/// the harness reports the failing case number and seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0i16..4, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::seed_for(concat!(module_path!(), "::", stringify!($name))));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Render the case up front: the body may move the args.
                    let mut __case_desc = ::std::string::String::new();
                    $(__case_desc.push_str(
                        &::std::format!("  {} = {:?}\n", stringify!($arg), &$arg),
                    );)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(err) = result {
                        eprintln!(
                            "proptest case {}/{} failed for {}:\n{}",
                            __case + 1,
                            config.cases,
                            stringify!($name),
                            __case_desc,
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, f in -1.0f32..1.0, k in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0i16..4, 1..9), w in prop::collection::vec(0u8..2, 5)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert_eq!(w.len(), 5);
            prop_assert!(v.iter().all(|&c| (0..4).contains(&c)));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
