//! Offline stand-in for `rand_chacha`: a real ChaCha8 stream cipher used
//! as an RNG. The keystream follows RFC 7539's block function with 8
//! rounds; output word order may differ from upstream `rand_chacha`, so
//! streams are reproducible *within* this workspace (same seed → same
//! stream, forever) but not guaranteed to match the real crate's.

#![allow(clippy::all)]
use rand::{RngCore, SeedableRng};

/// Re-export of the core RNG traits under the path upstream `rand_chacha`
/// exposes them at (`rand_chacha::rand_core::SeedableRng`, ...).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// ChaCha quarter round.
#[inline]
fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha8 random number generator: 256-bit key, 64-bit block counter,
/// 8 rounds per 64-byte block.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            qr(&mut s, 0, 4, 8, 12);
            qr(&mut s, 1, 5, 9, 13);
            qr(&mut s, 2, 6, 10, 14);
            qr(&mut s, 3, 7, 11, 15);
            qr(&mut s, 0, 5, 10, 15);
            qr(&mut s, 1, 6, 11, 12);
            qr(&mut s, 2, 7, 8, 13);
            qr(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(init.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
