//! Offline stand-in for `rayon`.
//!
//! The build container is single-core and has no crates-io access, so the
//! `par_*` entry points used by this workspace map onto ordinary sequential
//! iterators. This keeps call sites source-compatible with real rayon
//! (the returned types are the std iterators, which provide `enumerate`,
//! `map`, `for_each`, `collect`, …) and keeps results bit-deterministic.
//! Thread-level parallelism in this repository comes from `odq-serve`'s
//! worker pool instead.

#![allow(clippy::all)]
use std::ops::Range;

/// Mirror of rayon's prelude: bring the `par_*` extension traits in scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// `par_chunks_mut` / `par_chunks` on slices.
pub trait ParallelSliceMut<T> {
    /// Sequential equivalent of rayon's `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Shared-slice counterpart.
pub trait ParallelSlice<T> {
    /// Sequential equivalent of rayon's `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `into_par_iter` on ranges (and anything else iterable).
pub trait IntoParallelIterator {
    /// The underlying sequential iterator type.
    type Iter;
    /// Sequential equivalent of rayon's `into_par_iter`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_collects() {
        let sq: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, [0, 1, 4, 9, 16]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
