//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the small API subset it actually uses: [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] with uniform range sampling, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. Semantics follow the real crate closely
//! enough for this repository's purposes (deterministic streams given a
//! seed; uniform sampling), but the exact bit streams are *not* guaranteed
//! to match upstream `rand` — all determinism tests in this workspace
//! compare run-to-run, never against externally generated golden values.

#![allow(clippy::all)]
use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit words and byte fill.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array for the RNGs used here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (the same scheme
    /// the real crate uses, so small seeds still decorrelate well).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expander and the engine behind the test RNGs.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a raw state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Current raw state. `SplitMix64::new(state)` reproduces the stream
    /// from this point exactly (`next` advances the state before hashing),
    /// which is what proptest's regression persistence relies on to replay
    /// a failing case.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next(self)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128) - (low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is < 2^-64 × span — negligible for the spans
                // used in this workspace (all far below 2^32).
                let v = (rng.next_u64() as i128) % span;
                ((low as i128) + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $next:ident, $bits:expr, $mant:expr) => {
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(low < high || (inclusive && low <= high), "empty float range");
                // Uniform in [0, 1) from the top mantissa-many bits.
                let u = (rng.$next() >> ($bits - $mant)) as $t / (1u64 << $mant) as $t;
                let v = low + (high - low) * u;
                if v >= high && !inclusive {
                    low
                } else {
                    v
                }
            }
        }
    };
}

impl_sample_uniform_float!(f32, next_u32, 32u32, 24u32);
impl_sample_uniform_float!(f64, next_u64, 64u32, 53u32);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0f32..1.0)`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, as in the real crate's `SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Re-exports mirroring the real crate's module layout.
pub mod rngs {
    pub use super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = SplitMix64::new(1);
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for _ in 0..4000 {
            let v = rng.gen_range(0.0f32..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SplitMix64::new(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        #[derive(Debug)]
        struct W(SplitMix64);
        impl RngCore for W {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
        }
        impl SeedableRng for W {
            type Seed = [u8; 8];
            fn from_seed(seed: Self::Seed) -> Self {
                W(SplitMix64::new(u64::from_le_bytes(seed)))
            }
        }
        let mut a = W::seed_from_u64(9);
        let mut b = W::seed_from_u64(9);
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
