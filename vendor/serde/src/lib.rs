//! Offline stand-in for `serde`.
//!
//! The real serde models serialization through a visitor `Serializer`; the
//! only consumer in this workspace is `serde_json`, so the stand-in takes
//! the direct route: [`Serialize`] converts a value into a JSON [`Value`]
//! tree, which `serde_json` formats or parses. `#[derive(Serialize)]` is
//! provided by the vendored `serde_derive` proc-macro and generates
//! field-by-field [`Value::Object`] construction (externally tagged for
//! enums, matching real serde's default representation).

#![allow(clippy::all)]
pub use serde_derive::Serialize;

/// A JSON value tree.
///
/// Object fields keep insertion order (like `serde_json` with its
/// `preserve_order` feature); integers keep 64-bit precision rather than
/// flowing through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// As an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `f64` (integers convert), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// As `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// As `i64`, if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// As `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]`, yielding `Null` for missing keys or non-objects
    /// (matching `serde_json`'s indexing behavior).
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into a [`Value`] tree — the stand-in's serialization trait.
pub trait Serialize {
    /// Build the JSON value for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(v),
                }
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}
impl_ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u8.to_value(), Value::I64(3));
        assert_eq!((-2i16).to_value(), Value::I64(-2));
        assert_eq!(u64::MAX.to_value(), Value::U64(u64::MAX));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![(1u8, 2u64)].to_value(),
            Value::Array(vec![Value::Array(vec![Value::I64(1), Value::I64(2)])])
        );
    }

    #[test]
    fn indexing_and_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::F64(0.5)),
            ("b".into(), Value::Array(vec![Value::I64(7)])),
        ]);
        assert_eq!(v["a"].as_f64(), Some(0.5));
        assert_eq!(v["b"][0].as_u64(), Some(7));
        assert_eq!(v["missing"], Value::Null);
        assert!(v["missing"].as_str().is_none());
    }
}
