//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`bench_with_input`/`finish`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock measurement loop (a short warmup, then enough
//! iterations to cover a minimum measuring window) instead of criterion's
//! statistical machinery. Output is one `name ... time/iter` line per
//! bench.

#![allow(clippy::all)]
use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench registry / runner.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measure_for: Duration::from_millis(200) }
    }
}

/// Handed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    measure_for: Duration,
    /// Measured nanoseconds per iteration, after `iter` returns.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, keeping its output alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: one timed call.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measure_for.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher { measure_for: self.measure_for, ns_per_iter: 0.0 };
        f(&mut b);
        println!("{name:<48} {:>12}/iter", human_time(b.ns_per_iter));
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string() }
    }
}

/// Identifier for parameterized benches.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { text: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.c.run_one(&full, &mut f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.text);
        self.c.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// End the group (formatting no-op in the stand-in).
    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion { measure_for: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_and_ids() {
        let mut c = Criterion { measure_for: Duration::from_millis(2) };
        let mut group = c.benchmark_group("g");
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter("p=3"), &3u32, |b, &p| b.iter(|| p * 2));
        group.finish();
        assert_eq!(BenchmarkId::new("n", 7).text, "n/7");
    }
}
