//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace uses —
//! structs with named fields, and enums with named-field or unit variants —
//! by walking the raw token stream (the container has no `syn`/`quote`).
//! Generated impls build the vendored `serde::Value` tree; enums use the
//! real serde's default externally-tagged representation.

#![allow(clippy::all)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored Value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match ident_at(&tokens, pos) {
        Some(k) if k == "struct" || k == "enum" => {
            pos += 1;
            k
        }
        other => panic!("derive(Serialize) stand-in: expected struct/enum, found {other:?}"),
    };
    let name = ident_at(&tokens, pos)
        .unwrap_or_else(|| panic!("derive(Serialize) stand-in: missing type name"));
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) stand-in: generic types are not supported (type {name})");
    }

    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "derive(Serialize) stand-in: expected braced body for {name}, found {other:?} \
             (tuple/unit structs are not supported)"
        ),
    };

    let code = if kind == "struct" {
        let fields = parse_named_fields(body);
        gen_struct_impl(&name, &fields)
    } else {
        let variants = parse_variants(body);
        gen_enum_impl(&name, &variants)
    };
    code.parse().expect("derive(Serialize) stand-in: generated code failed to parse")
}

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attributes (including expanded doc comments).
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *pos += 2;
            }
            _ => break,
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(ident_at(tokens, *pos).as_deref(), Some("pub")) {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skip a type (after `:`) up to a top-level `,`, tracking `<`/`>` depth.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Field names of a named-field body (struct or enum-variant).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = ident_at(&tokens, pos)
            .unwrap_or_else(|| panic!("derive(Serialize) stand-in: expected field name"));
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("derive(Serialize) stand-in: expected ':' after {name}, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // consume the ',' (or run off the end)
        fields.push(name);
    }
    fields
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
}

/// Variants of an enum body (named-field and unit shapes only).
fn parse_variants(body: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        let name = ident_at(&tokens, pos)
            .unwrap_or_else(|| panic!("derive(Serialize) stand-in: expected variant name"));
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive(Serialize) stand-in: tuple variant {name} is not supported");
            }
            _ => VariantShape::Unit,
        };
        // Skip to the variant separator (covers `= disc` too).
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push((name, shape));
    }
    variants
}

fn gen_struct_impl(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         ::serde::Value::Object(::std::vec![{}])\n\
         }}\n\
         }}",
        entries.join(", ")
    )
}

fn gen_enum_impl(name: &str, variants: &[(String, VariantShape)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, shape)| match shape {
            VariantShape::Unit => format!(
                "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
            ),
            VariantShape::Named(fields) => {
                let binds = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Object(::std::vec![{}]))]),",
                    entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}
